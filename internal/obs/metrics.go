package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBounds are the upper bounds of the query-latency histogram
// buckets; an implicit +Inf bucket follows the last bound.
var latencyBounds = []time.Duration{
	250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second,
	10 * time.Second, 30 * time.Second,
}

// Collector accumulates DB-lifetime query metrics. All recording methods
// are called once per query (never per morsel) and are safe for concurrent
// use; a single mutex guards the whole state, so a Snapshot is internally
// consistent — the per-kind error counts always sum to the total.
type Collector struct {
	mu           sync.Mutex
	modes        map[string]*modeCount
	latency      []int64 // per-bucket counts, +Inf last
	latencyCount int64
	latencySum   time.Duration
	admWaits     int64
	admWait      time.Duration
	alternatives int64
	memHighWater int64
	spillQueries int64
	spillBytes   int64
}

type modeCount struct {
	ok   int64
	errs map[string]int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		modes:   make(map[string]*modeCount),
		latency: make([]int64, len(latencyBounds)+1),
	}
}

// RecordQuery counts one finished query: its optimisation mode, its error
// kind label ("" for success, see KindLabel), and its end-to-end latency.
func (c *Collector) RecordQuery(mode, kind string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mc := c.modes[mode]
	if mc == nil {
		mc = &modeCount{errs: make(map[string]int64)}
		c.modes[mode] = mc
	}
	if kind == "" {
		mc.ok++
	} else {
		mc.errs[kind]++
	}
	i := sort.Search(len(latencyBounds), func(i int) bool { return d <= latencyBounds[i] })
	c.latency[i]++
	c.latencyCount++
	c.latencySum += d
}

// RecordAdmissionWait counts one pass through the admission gate and the
// time spent waiting for a slot.
func (c *Collector) RecordAdmissionWait(d time.Duration) {
	c.mu.Lock()
	c.admWaits++
	c.admWait += d
	c.mu.Unlock()
}

// AddAlternatives credits physical alternatives enumerated by one
// optimisation run (plan-cache hits credit nothing: no enumeration ran).
func (c *Collector) AddAlternatives(n int) {
	c.mu.Lock()
	c.alternatives += int64(n)
	c.mu.Unlock()
}

// ObserveMemPeak raises the DB-lifetime memory high-water mark to at least
// the given per-query peak.
func (c *Collector) ObserveMemPeak(bytes int64) {
	c.mu.Lock()
	if bytes > c.memHighWater {
		c.memHighWater = bytes
	}
	c.mu.Unlock()
}

// ObserveSpill counts one query that spilled to disk and the run-file bytes
// it wrote (cumulative across all of its spilling operators).
func (c *Collector) ObserveSpill(bytes int64) {
	c.mu.Lock()
	c.spillQueries++
	c.spillBytes += bytes
	c.mu.Unlock()
}

// Snapshot returns a consistent copy of the collected metrics. The
// DB-level gauges (admission queue/running, plan-cache counters, executor
// morsel counters) are zero here; DB.Metrics fills them in.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Errors:                make(map[string]int64),
		Modes:                 make(map[string]ModeSnapshot, len(c.modes)),
		LatencyBuckets:        make([]LatencyBucket, 0, len(c.latency)),
		LatencyCount:          c.latencyCount,
		LatencySum:            c.latencySum,
		AdmissionWaits:        c.admWaits,
		AdmissionWait:         c.admWait,
		OptimizerAlternatives: c.alternatives,
		MemHighWater:          c.memHighWater,
		SpilledQueries:        c.spillQueries,
		SpilledBytes:          c.spillBytes,
	}
	for mode, mc := range c.modes {
		ms := ModeSnapshot{OK: mc.ok, Errors: make(map[string]int64, len(mc.errs))}
		ms.Total = mc.ok
		for k, n := range mc.errs {
			ms.Errors[k] = n
			ms.Total += n
			s.Errors[k] += n
		}
		s.Modes[mode] = ms
		s.Queries += ms.Total
		s.OK += mc.ok
	}
	for i, n := range c.latency {
		le := time.Duration(0) // 0 marks the +Inf bucket
		if i < len(latencyBounds) {
			le = latencyBounds[i]
		}
		s.LatencyBuckets = append(s.LatencyBuckets, LatencyBucket{Le: le, Count: n})
	}
	return s
}

// ModeSnapshot is one optimisation mode's query counts.
type ModeSnapshot struct {
	Total  int64
	OK     int64
	Errors map[string]int64 // by kind label; sums to Total-OK
}

// LatencyBucket is one histogram bucket: the count of queries with latency
// <= Le (Le == 0 marks the +Inf bucket). Counts are per-bucket, not
// cumulative; the exposition writer cumulates.
type LatencyBucket struct {
	Le    time.Duration
	Count int64
}

// Snapshot is a point-in-time view of a DB's metrics. Counter semantics:
// Queries == OK + sum over Errors — the error kinds exactly partition the
// failed queries.
type Snapshot struct {
	Queries int64
	OK      int64
	Errors  map[string]int64 // by kind label, aggregated over modes
	Modes   map[string]ModeSnapshot

	LatencyBuckets []LatencyBucket
	LatencyCount   int64
	LatencySum     time.Duration

	AdmissionWaits   int64         // queries that passed the gate
	AdmissionWait    time.Duration // cumulative time waiting for a slot
	AdmissionRunning int           // gauge: queries holding a slot now
	AdmissionQueued  int           // gauge: queries waiting now

	PlanCacheHits   int
	PlanCacheMisses int

	OptimizerAlternatives int64 // cumulative alternatives costed

	Morsels    int64 // morsel batches consumed at pipeline boundaries
	MorselRows int64 // rows in those batches

	MemHighWater int64 // bytes: largest per-query peak seen

	SpilledQueries int64 // queries that wrote at least one spill run file
	SpilledBytes   int64 // cumulative run-file bytes written by those queries
}

// WriteProm writes the snapshot in the Prometheus text exposition format.
// Output is deterministic: label values are sorted.
func (s Snapshot) WriteProm(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("# HELP dqo_queries_total Queries finished, by optimisation mode and status.\n")
	pf("# TYPE dqo_queries_total counter\n")
	for _, mode := range sortedKeys(s.Modes) {
		ms := s.Modes[mode]
		pf("dqo_queries_total{mode=%q,status=\"ok\"} %d\n", mode, ms.OK)
		for _, kind := range sortedKeys(ms.Errors) {
			pf("dqo_queries_total{mode=%q,status=%q} %d\n", mode, kind, ms.Errors[kind])
		}
	}
	pf("# HELP dqo_query_duration_seconds End-to-end query latency.\n")
	pf("# TYPE dqo_query_duration_seconds histogram\n")
	cum := int64(0)
	for _, b := range s.LatencyBuckets {
		cum += b.Count
		if b.Le == 0 {
			pf("dqo_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
		} else {
			pf("dqo_query_duration_seconds_bucket{le=%q} %g\n", fmt.Sprintf("%g", b.Le.Seconds()), float64(cum))
		}
	}
	pf("dqo_query_duration_seconds_sum %g\n", s.LatencySum.Seconds())
	pf("dqo_query_duration_seconds_count %d\n", s.LatencyCount)
	pf("# HELP dqo_admission_wait_seconds_total Time spent waiting for an admission slot.\n")
	pf("# TYPE dqo_admission_wait_seconds_total counter\n")
	pf("dqo_admission_wait_seconds_total %g\n", s.AdmissionWait.Seconds())
	pf("# TYPE dqo_admission_passes_total counter\n")
	pf("dqo_admission_passes_total %d\n", s.AdmissionWaits)
	pf("# TYPE dqo_admission_running gauge\n")
	pf("dqo_admission_running %d\n", s.AdmissionRunning)
	pf("# TYPE dqo_admission_queued gauge\n")
	pf("dqo_admission_queued %d\n", s.AdmissionQueued)
	pf("# HELP dqo_plan_cache_hits_total Plan-cache hits (and misses below).\n")
	pf("# TYPE dqo_plan_cache_hits_total counter\n")
	pf("dqo_plan_cache_hits_total %d\n", s.PlanCacheHits)
	pf("# TYPE dqo_plan_cache_misses_total counter\n")
	pf("dqo_plan_cache_misses_total %d\n", s.PlanCacheMisses)
	pf("# HELP dqo_optimizer_alternatives_total Physical plan alternatives costed.\n")
	pf("# TYPE dqo_optimizer_alternatives_total counter\n")
	pf("dqo_optimizer_alternatives_total %d\n", s.OptimizerAlternatives)
	pf("# HELP dqo_exec_morsels_total Morsel batches consumed at pipeline boundaries.\n")
	pf("# TYPE dqo_exec_morsels_total counter\n")
	pf("dqo_exec_morsels_total %d\n", s.Morsels)
	pf("# TYPE dqo_exec_rows_total counter\n")
	pf("dqo_exec_rows_total %d\n", s.MorselRows)
	pf("# HELP dqo_mem_highwater_bytes Largest per-query memory peak observed.\n")
	pf("# TYPE dqo_mem_highwater_bytes gauge\n")
	pf("dqo_mem_highwater_bytes %d\n", s.MemHighWater)
	pf("# HELP dqo_spill_queries_total Queries that spilled at least one run file to disk.\n")
	pf("# TYPE dqo_spill_queries_total counter\n")
	pf("dqo_spill_queries_total %d\n", s.SpilledQueries)
	pf("# HELP dqo_spill_bytes_total Run-file bytes written by spilling queries.\n")
	pf("# TYPE dqo_spill_bytes_total counter\n")
	pf("dqo_spill_bytes_total %d\n", s.SpilledBytes)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
