package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// HTTPCollector accumulates serving-layer request metrics: per-endpoint
// request counts by HTTP status, a per-endpoint latency histogram (reusing
// the engine's bucket bounds), and shed/drain counters. It is the serving
// twin of Collector — the engine's collector counts queries, this one counts
// requests, and /metrics emits both expositions back to back. All methods
// are safe for concurrent use.
type HTTPCollector struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	shed      int64 // requests rejected with 429 (admission queue full)
	drained   int64 // in-flight requests completed during graceful shutdown
}

type endpointStats struct {
	status  map[int]int64
	latency []int64 // per-bucket counts, +Inf last
	count   int64
	sum     time.Duration
}

// NewHTTPCollector returns an empty collector.
func NewHTTPCollector() *HTTPCollector {
	return &HTTPCollector{endpoints: make(map[string]*endpointStats)}
}

// RecordRequest counts one finished request: its endpoint (the route
// pattern, not the raw URL), final HTTP status, and wall-clock latency.
// Status 429 additionally counts as a shed.
func (c *HTTPCollector) RecordRequest(endpoint string, status int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	es := c.endpoints[endpoint]
	if es == nil {
		es = &endpointStats{
			status:  make(map[int]int64),
			latency: make([]int64, len(latencyBounds)+1),
		}
		c.endpoints[endpoint] = es
	}
	es.status[status]++
	i := sort.Search(len(latencyBounds), func(i int) bool { return d <= latencyBounds[i] })
	es.latency[i]++
	es.count++
	es.sum += d
	if status == 429 {
		c.shed++
	}
}

// RecordDrained counts one in-flight request that completed while the
// server was draining for shutdown.
func (c *HTTPCollector) RecordDrained() {
	c.mu.Lock()
	c.drained++
	c.mu.Unlock()
}

// HTTPGauges are the point-in-time server gauges owned by the session table
// and gate, supplied at exposition time rather than recorded.
type HTTPGauges struct {
	Sessions      int // live sessions
	PreparedStmts int // server-side prepared statements across sessions
	Running       int // requests holding an admission slot
	Queued        int // requests waiting for a slot
}

// WriteProm writes the collected request metrics plus the supplied gauges in
// the Prometheus text exposition format, deterministically (endpoints and
// status codes sorted), with every series prefixed dqoserve_.
func (c *HTTPCollector) WriteProm(w io.Writer, g HTTPGauges) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	names := make([]string, 0, len(c.endpoints))
	for name := range c.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	pf("# HELP dqoserve_requests_total Requests finished, by endpoint and HTTP status.\n")
	pf("# TYPE dqoserve_requests_total counter\n")
	for _, name := range names {
		es := c.endpoints[name]
		codes := make([]int, 0, len(es.status))
		for code := range es.status {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			pf("dqoserve_requests_total{endpoint=%q,status=\"%d\"} %d\n", name, code, es.status[code])
		}
	}
	pf("# HELP dqoserve_request_duration_seconds Request latency by endpoint.\n")
	pf("# TYPE dqoserve_request_duration_seconds histogram\n")
	for _, name := range names {
		es := c.endpoints[name]
		cum := int64(0)
		for i, n := range es.latency {
			cum += n
			if i == len(latencyBounds) {
				pf("dqoserve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
			} else {
				pf("dqoserve_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
					name, fmt.Sprintf("%g", latencyBounds[i].Seconds()), cum)
			}
		}
		pf("dqoserve_request_duration_seconds_sum{endpoint=%q} %g\n", name, es.sum.Seconds())
		pf("dqoserve_request_duration_seconds_count{endpoint=%q} %d\n", name, es.count)
	}
	pf("# HELP dqoserve_shed_total Requests rejected with 429 (admission queue full).\n")
	pf("# TYPE dqoserve_shed_total counter\n")
	pf("dqoserve_shed_total %d\n", c.shed)
	pf("# HELP dqoserve_drained_total In-flight requests completed during graceful shutdown.\n")
	pf("# TYPE dqoserve_drained_total counter\n")
	pf("dqoserve_drained_total %d\n", c.drained)
	pf("# TYPE dqoserve_sessions gauge\n")
	pf("dqoserve_sessions %d\n", g.Sessions)
	pf("# TYPE dqoserve_prepared_statements gauge\n")
	pf("dqoserve_prepared_statements %d\n", g.PreparedStmts)
	pf("# TYPE dqoserve_running gauge\n")
	pf("dqoserve_running %d\n", g.Running)
	pf("# TYPE dqoserve_queued gauge\n")
	pf("dqoserve_queued %d\n", g.Queued)
	return err
}
