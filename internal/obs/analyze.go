package obs

import (
	"fmt"
	"strings"
	"time"
)

// AnalyzeRow pairs one executed operator with the optimiser's estimates for
// the plan node it was compiled from. Executor-only operators (LIMIT,
// pipeline drivers) have no plan node: HasEst is false and the estimate
// columns render as "-".
type AnalyzeRow struct {
	Label string
	Depth int

	HasEst   bool
	EstRows  float64
	EstCost  float64 // self cost (node cost minus children), model units
	EstBytes float64 // optimiser's subtree peak-memory estimate

	ActRows  int64
	ActSelf  time.Duration // wall time minus children's wall time
	ActWall  time.Duration
	ActBytes int64 // measured subtree peak bytes
	Batches  int64
	DOP      int64

	// Replanned marks an operator whose kernel was swapped mid-query by a
	// re-planning splice; its estimates describe the plan before the switch.
	Replanned bool

	// Spill accounting, nonzero only for operators that wrote run files.
	SpillBytes  int64
	SpillParts  int64
	SpillPasses int64
}

// RenderAnalyze renders EXPLAIN ANALYZE rows as an aligned table with
// misestimation factors (measured/estimated). Cost is unit-less in the
// model, so the time factor calibrates one ns-per-cost-unit ratio from the
// whole query (total measured self time / total estimated self cost) and
// reports each operator's deviation from that query-wide ratio — a factor
// of 1.0 means the operator's share of time matches its share of cost.
func RenderAnalyze(rows []AnalyzeRow, total time.Duration) string {
	var totalSelf time.Duration
	var totalCost float64
	for _, r := range rows {
		if r.HasEst {
			totalSelf += r.ActSelf
			totalCost += r.EstCost
		}
	}
	nsPerCost := 0.0
	if totalCost > 0 {
		nsPerCost = float64(totalSelf.Nanoseconds()) / totalCost
	}

	const (
		dash = "-"
	)
	type cells struct{ vals [11]string }
	header := [11]string{"operator", "est_rows", "act_rows", "rows_x",
		"est_self", "act_self", "time_x", "est_mem", "act_mem", "mem_x", "dop"}
	out := make([]cells, 0, len(rows))
	for _, r := range rows {
		var c cells
		c.vals[0] = strings.Repeat("  ", r.Depth) + r.Label
		if r.Replanned {
			c.vals[0] += " [replanned]"
		}
		if r.SpillBytes > 0 {
			c.vals[0] += fmt.Sprintf(" [spilled %d parts, %s]", r.SpillParts, FmtBytes(r.SpillBytes))
		}
		c.vals[2] = fmt.Sprintf("%d", r.ActRows)
		c.vals[5] = fmtDur(r.ActSelf)
		c.vals[8] = FmtBytes(r.ActBytes)
		c.vals[10] = fmt.Sprintf("%d", r.DOP)
		if !r.HasEst {
			c.vals[1], c.vals[3], c.vals[4], c.vals[6], c.vals[7], c.vals[9] =
				dash, dash, dash, dash, dash, dash
			out = append(out, c)
			continue
		}
		c.vals[1] = fmt.Sprintf("%.0f", r.EstRows)
		c.vals[3] = factor(float64(r.ActRows), r.EstRows)
		estSelf := time.Duration(r.EstCost * nsPerCost)
		c.vals[4] = fmtDur(estSelf)
		c.vals[6] = factor(float64(r.ActSelf.Nanoseconds()), r.EstCost*nsPerCost)
		c.vals[7] = FmtBytes(int64(r.EstBytes))
		c.vals[9] = factor(float64(r.ActBytes), r.EstBytes)
		out = append(out, c)
	}

	var w [11]int
	for i, h := range header {
		w[i] = len(h)
	}
	for _, c := range out {
		for i, v := range c.vals {
			if len(v) > w[i] {
				w[i] = len(v)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals [11]string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", w[i], v)
			} else {
				fmt.Fprintf(&b, "%*s", w[i], v)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, c := range out {
		writeRow(c.vals)
	}
	fmt.Fprintf(&b, "total: %s\n", total.Round(time.Microsecond))
	return b.String()
}

// factor renders measured/estimated as "N.NNx"; "-" when the estimate is
// zero (nothing to compare against) unless the measurement is zero too, in
// which case the estimate was exactly right.
func factor(act, est float64) string {
	if est <= 0 {
		if act == 0 {
			return "1.00x"
		}
		return "-"
	}
	return fmt.Sprintf("%.2fx", act/est)
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
