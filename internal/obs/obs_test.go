package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dqo/internal/qerr"
)

func TestPhasesOrder(t *testing.T) {
	want := []string{"parse", "bind", "optimise", "compile", "admission-wait", "execute"}
	got := Phases()
	if len(got) != len(want) {
		t.Fatalf("Phases() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Phases()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSpanWalkPreOrder(t *testing.T) {
	root := &Span{Name: "a", Children: []*Span{
		{Name: "b", Children: []*Span{{Name: "c"}}},
		{Name: "d"},
	}}
	var names []string
	var depths []int
	root.Walk(func(s *Span, d int) {
		names = append(names, s.Name)
		depths = append(depths, d)
	})
	if strings.Join(names, "") != "abcd" {
		t.Fatalf("pre-order = %v", names)
	}
	wantD := []int{0, 1, 2, 1}
	for i, d := range wantD {
		if depths[i] != d {
			t.Fatalf("depths = %v, want %v", depths, wantD)
		}
	}
}

func TestQueryTracePhase(t *testing.T) {
	tr := &QueryTrace{Root: &Span{Name: "query", Children: []*Span{
		{Name: PhaseParse}, {Name: PhaseExecute, Dur: time.Millisecond},
	}}}
	if sp := tr.Phase(PhaseExecute); sp == nil || sp.Dur != time.Millisecond {
		t.Fatalf("Phase(execute) = %+v", sp)
	}
	if sp := tr.Phase("nope"); sp != nil {
		t.Fatalf("Phase(nope) = %+v, want nil", sp)
	}
	var nilTrace *QueryTrace
	if sp := nilTrace.Phase(PhaseParse); sp != nil {
		t.Fatalf("nil trace Phase = %+v", sp)
	}
}

func TestKindLabel(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{qerr.ErrCancelled, "cancelled"},
		{fmt.Errorf("wrap: %w", qerr.ErrTimeout), "timeout"},
		{qerr.ErrMemoryBudgetExceeded, "memory_budget"},
		{qerr.ErrQueueFull, "queue_full"},
		{qerr.ErrInternal, "internal"},
		{errors.New("parse error"), "other"},
		{context.Canceled, "other"},
	}
	for _, c := range cases {
		if got := KindLabel(c.err); got != c.want {
			t.Errorf("KindLabel(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestRingTracerEviction(t *testing.T) {
	r := NewRingTracer(3)
	if r.Last() != nil {
		t.Fatal("Last on empty ring should be nil")
	}
	for i := 0; i < 5; i++ {
		r.TraceQuery(&QueryTrace{Query: fmt.Sprintf("q%d", i)})
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d, want 5", r.Count())
	}
	if got := r.Last().Query; got != "q4" {
		t.Fatalf("Last = %q, want q4", got)
	}
	traces := r.Traces()
	if len(traces) != 3 {
		t.Fatalf("len(Traces) = %d, want 3", len(traces))
	}
	for i, want := range []string{"q2", "q3", "q4"} {
		if traces[i].Query != want {
			t.Fatalf("Traces[%d] = %q, want %q", i, traces[i].Query, want)
		}
	}
}

func TestRingTracerClamp(t *testing.T) {
	r := NewRingTracer(0)
	r.TraceQuery(&QueryTrace{Query: "a"})
	r.TraceQuery(&QueryTrace{Query: "b"})
	if got := r.Traces(); len(got) != 1 || got[0].Query != "b" {
		t.Fatalf("Traces = %v", got)
	}
}

func TestCollectorPartition(t *testing.T) {
	c := NewCollector()
	c.RecordQuery("sqo", "", time.Millisecond)
	c.RecordQuery("sqo", "timeout", 2*time.Millisecond)
	c.RecordQuery("dqo", "", 500*time.Microsecond)
	c.RecordQuery("dqo", "other", time.Second)
	c.RecordQuery("dqo", "other", time.Second)
	s := c.Snapshot()
	if s.Queries != 5 || s.OK != 2 {
		t.Fatalf("Queries=%d OK=%d", s.Queries, s.OK)
	}
	var errSum int64
	for _, n := range s.Errors {
		errSum += n
	}
	if s.OK+errSum != s.Queries {
		t.Fatalf("partition broken: OK=%d + errs=%d != %d", s.OK, errSum, s.Queries)
	}
	if s.Modes["dqo"].Errors["other"] != 2 {
		t.Fatalf("dqo/other = %d, want 2", s.Modes["dqo"].Errors["other"])
	}
	if s.LatencyCount != 5 {
		t.Fatalf("LatencyCount = %d", s.LatencyCount)
	}
	var bucketSum int64
	for _, b := range s.LatencyBuckets {
		bucketSum += b.Count
	}
	if bucketSum != 5 {
		t.Fatalf("bucket sum = %d, want 5", bucketSum)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				kind := ""
				if i%3 == 0 {
					kind = "timeout"
				}
				c.RecordQuery("sqo", kind, time.Duration(i)*time.Microsecond)
				c.RecordAdmissionWait(time.Microsecond)
				c.AddAlternatives(2)
				c.ObserveMemPeak(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Queries != 800 {
		t.Fatalf("Queries = %d, want 800", s.Queries)
	}
	if s.OK+s.Errors["timeout"] != 800 {
		t.Fatalf("partition: OK=%d timeout=%d", s.OK, s.Errors["timeout"])
	}
	if s.AdmissionWaits != 800 || s.OptimizerAlternatives != 1600 {
		t.Fatalf("waits=%d alts=%d", s.AdmissionWaits, s.OptimizerAlternatives)
	}
	if s.MemHighWater != 7099 {
		t.Fatalf("MemHighWater = %d, want 7099", s.MemHighWater)
	}
}

func TestWritePromShape(t *testing.T) {
	c := NewCollector()
	c.RecordQuery("dqo", "", 3*time.Millisecond)
	c.RecordQuery("sqo", "memory_budget", 40*time.Millisecond)
	s := c.Snapshot()
	s.PlanCacheHits = 7
	s.PlanCacheMisses = 3
	s.AdmissionRunning = 1
	s.Morsels = 42
	s.MorselRows = 1000
	var b strings.Builder
	if err := s.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dqo_queries_total{mode="dqo",status="ok"} 1`,
		`dqo_queries_total{mode="sqo",status="memory_budget"} 1`,
		`dqo_query_duration_seconds_bucket{le="+Inf"} 2`,
		`dqo_query_duration_seconds_count 2`,
		`dqo_plan_cache_hits_total 7`,
		`dqo_plan_cache_misses_total 3`,
		`dqo_admission_running 1`,
		`dqo_exec_morsels_total 42`,
		`dqo_exec_rows_total 1000`,
		`dqo_mem_highwater_bytes 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and non-decreasing.
	prev := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "dqo_query_duration_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			// +Inf and float bounds both print integers via %g for whole counts.
			var f float64
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &f)
			n = int64(f)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative: %d after %d\n%s", n, prev, out)
		}
		prev = n
	}
}

func TestWritePromDeterministic(t *testing.T) {
	c := NewCollector()
	for _, mode := range []string{"dqo", "sqo", "dqo-calibrated"} {
		c.RecordQuery(mode, "", time.Millisecond)
		c.RecordQuery(mode, "timeout", time.Millisecond)
		c.RecordQuery(mode, "cancelled", time.Millisecond)
	}
	var a, b strings.Builder
	s := c.Snapshot()
	if err := s.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition not deterministic")
	}
}

func TestRenderAnalyze(t *testing.T) {
	rows := []AnalyzeRow{
		{Label: "Group(a)", Depth: 0, HasEst: true,
			EstRows: 100, EstCost: 50, EstBytes: 4096,
			ActRows: 200, ActSelf: 2 * time.Millisecond, ActWall: 5 * time.Millisecond,
			ActBytes: 8192, Batches: 3, DOP: 1},
		{Label: "Limit(10)", Depth: 1, HasEst: false,
			ActRows: 10, ActSelf: time.Microsecond, DOP: 1},
		{Label: "Scan(t)", Depth: 1, HasEst: true,
			EstRows: 1000, EstCost: 50, EstBytes: 0,
			ActRows: 1000, ActSelf: 2 * time.Millisecond, ActWall: 3 * time.Millisecond,
			ActBytes: 0, Batches: 3, DOP: 1},
	}
	out := RenderAnalyze(rows, 5*time.Millisecond)
	if !strings.Contains(out, "operator") || !strings.Contains(out, "rows_x") {
		t.Fatalf("missing header:\n%s", out)
	}
	// 200 actual vs 100 estimated rows → 2.00x.
	if !strings.Contains(out, "2.00x") {
		t.Fatalf("missing rows misestimation factor:\n%s", out)
	}
	// Equal cost shares and equal self times → time_x 1.00x on both.
	if strings.Count(out, "1.00x") < 2 {
		t.Fatalf("expected calibrated time factors of 1.00x:\n%s", out)
	}
	// Executor-only row renders dashes for estimates.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Limit(10)") && !strings.Contains(line, "-") {
			t.Fatalf("executor-only row should show '-':\n%s", out)
		}
	}
	if !strings.Contains(out, "total: 5ms") {
		t.Fatalf("missing total:\n%s", out)
	}
}

func TestFactor(t *testing.T) {
	if got := factor(0, 0); got != "1.00x" {
		t.Fatalf("factor(0,0) = %q", got)
	}
	if got := factor(5, 0); got != "-" {
		t.Fatalf("factor(5,0) = %q", got)
	}
	if got := factor(3, 2); got != "1.50x" {
		t.Fatalf("factor(3,2) = %q", got)
	}
}

func TestFmtBytes(t *testing.T) {
	if got := FmtBytes(512); got != "512B" {
		t.Fatalf("FmtBytes(512) = %q", got)
	}
	if got := FmtBytes(2048); got != "2.0KiB" {
		t.Fatalf("FmtBytes(2048) = %q", got)
	}
	if got := FmtBytes(3 << 20); got != "3.0MiB" {
		t.Fatalf("FmtBytes(3MiB) = %q", got)
	}
}
