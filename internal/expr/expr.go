// Package expr implements scalar expressions (predicates, arithmetic) and
// aggregate specifications evaluated over columnar relations.
//
// Expression evaluation is vectorised: an expression evaluates over a whole
// relation into a typed result vector. The hot aggregation loops in
// internal/physical do not go through this interpreter — they read raw
// columns — so the interpreter favours clarity over micro-optimisation.
package expr

import (
	"fmt"
	"strings"

	"dqo/internal/storage"
)

// Op is a binary operator.
type Op uint8

// Binary operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return "?"
	}
}

// comparison reports whether the operator yields booleans from scalars.
func (o Op) comparison() bool { return o <= OpGe }

// logical reports whether the operator combines booleans.
func (o Op) logical() bool { return o == OpAnd || o == OpOr }

// Expr is a scalar expression tree.
type Expr interface {
	// String renders the expression in SQL-ish syntax.
	String() string
	// Columns appends the column names referenced to dst.
	Columns(dst []string) []string
}

// Col references a column by name.
type Col struct{ Name string }

// String implements Expr.
func (c Col) String() string { return c.Name }

// Columns implements Expr.
func (c Col) Columns(dst []string) []string { return append(dst, c.Name) }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// String implements Expr.
func (l IntLit) String() string { return fmt.Sprintf("%d", l.V) }

// Columns implements Expr.
func (l IntLit) Columns(dst []string) []string { return dst }

// FloatLit is a float literal.
type FloatLit struct{ V float64 }

// String implements Expr.
func (l FloatLit) String() string { return fmt.Sprintf("%g", l.V) }

// Columns implements Expr.
func (l FloatLit) Columns(dst []string) []string { return dst }

// StrLit is a string literal.
type StrLit struct{ V string }

// String implements Expr, escaping embedded quotes SQL-style.
func (l StrLit) String() string {
	return "'" + strings.ReplaceAll(l.V, "'", "''") + "'"
}

// Columns implements Expr.
func (l StrLit) Columns(dst []string) []string { return dst }

// Param is a positional statement parameter ("?"); Idx is its 0-based
// position in the statement text. Parameters carry no value — they are
// slots a prepared statement substitutes typed literals into before the
// binder runs; evaluating one is an error.
type Param struct{ Idx int }

// String implements Expr.
func (p Param) String() string { return "?" }

// Columns implements Expr.
func (p Param) Columns(dst []string) []string { return dst }

// Bin is a binary expression.
type Bin struct {
	Op   Op
	L, R Expr
}

// String implements Expr.
func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Columns implements Expr.
func (b Bin) Columns(dst []string) []string {
	return b.R.Columns(b.L.Columns(dst))
}

// resultKind is the evaluated type of an expression.
type resultKind uint8

const (
	rkBool resultKind = iota
	rkInt
	rkFloat
	rkString
)

// result is a vectorised evaluation result. Exactly one slice is populated.
type result struct {
	kind   resultKind
	bools  []bool
	ints   []int64
	floats []float64
	strs   []string
}

// EvalPredicate evaluates e over rel and returns one bool per row. The
// expression must be boolean-typed.
func EvalPredicate(e Expr, rel *storage.Relation) ([]bool, error) {
	r, err := eval(e, rel)
	if err != nil {
		return nil, err
	}
	if r.kind != rkBool {
		return nil, fmt.Errorf("expr: %s is not a predicate", e)
	}
	return r.bools, nil
}

// Selectivity runs the predicate and returns the selected row indexes. The
// returned slice is drawn from the storage buffer pool; callers that consume
// it immediately (e.g. via Gather) may release it with storage.PutInt32s.
func Selectivity(e Expr, rel *storage.Relation) ([]int32, error) {
	bools, err := EvalPredicate(e, rel)
	if err != nil {
		return nil, err
	}
	idx := storage.GetInt32s(len(bools))
	for i, b := range bools {
		if b {
			idx = append(idx, int32(i))
		}
	}
	return idx, nil
}

func eval(e Expr, rel *storage.Relation) (result, error) {
	switch e := e.(type) {
	case Col:
		return evalCol(e, rel)
	case IntLit:
		return result{kind: rkInt, ints: broadcastInt(e.V, rel.NumRows())}, nil
	case FloatLit:
		return result{kind: rkFloat, floats: broadcastFloat(e.V, rel.NumRows())}, nil
	case StrLit:
		return result{kind: rkString, strs: broadcastStr(e.V, rel.NumRows())}, nil
	case Bin:
		return evalBin(e, rel)
	default:
		return result{}, fmt.Errorf("expr: unknown expression type %T", e)
	}
}

func broadcastInt(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func broadcastFloat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func broadcastStr(v string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func evalCol(c Col, rel *storage.Relation) (result, error) {
	col, ok := rel.Column(c.Name)
	if !ok {
		return result{}, fmt.Errorf("expr: unknown column %q", c.Name)
	}
	switch col.Kind() {
	case storage.KindUint32:
		out := make([]int64, col.Len())
		for i, v := range col.Uint32s() {
			out[i] = int64(v)
		}
		return result{kind: rkInt, ints: out}, nil
	case storage.KindUint64:
		out := make([]int64, col.Len())
		for i, v := range col.Uint64s() {
			out[i] = int64(v)
		}
		return result{kind: rkInt, ints: out}, nil
	case storage.KindInt64:
		return result{kind: rkInt, ints: col.Int64s()}, nil
	case storage.KindFloat64:
		return result{kind: rkFloat, floats: col.Float64s()}, nil
	case storage.KindString:
		out := make([]string, col.Len())
		d := col.Dict()
		for i, code := range col.Uint32s() {
			out[i] = d.Lookup(code)
		}
		return result{kind: rkString, strs: out}, nil
	default:
		return result{}, fmt.Errorf("expr: column %q has invalid kind", c.Name)
	}
}

func evalBin(b Bin, rel *storage.Relation) (result, error) {
	l, err := eval(b.L, rel)
	if err != nil {
		return result{}, err
	}
	r, err := eval(b.R, rel)
	if err != nil {
		return result{}, err
	}
	if b.Op.logical() {
		if l.kind != rkBool || r.kind != rkBool {
			return result{}, fmt.Errorf("expr: %s requires boolean operands", b.Op)
		}
		out := make([]bool, len(l.bools))
		if b.Op == OpAnd {
			for i := range out {
				out[i] = l.bools[i] && r.bools[i]
			}
		} else {
			for i := range out {
				out[i] = l.bools[i] || r.bools[i]
			}
		}
		return result{kind: rkBool, bools: out}, nil
	}

	// Promote int to float when mixed.
	if l.kind == rkInt && r.kind == rkFloat {
		l = toFloat(l)
	}
	if l.kind == rkFloat && r.kind == rkInt {
		r = toFloat(r)
	}
	if l.kind != r.kind {
		return result{}, fmt.Errorf("expr: type mismatch %s: %v vs %v", b.Op, l.kind, r.kind)
	}

	if b.Op.comparison() {
		out := make([]bool, lenOf(l))
		switch l.kind {
		case rkInt:
			cmpSlice(out, b.Op, l.ints, r.ints)
		case rkFloat:
			cmpSlice(out, b.Op, l.floats, r.floats)
		case rkString:
			cmpSlice(out, b.Op, l.strs, r.strs)
		default:
			return result{}, fmt.Errorf("expr: cannot compare booleans with %s", b.Op)
		}
		return result{kind: rkBool, bools: out}, nil
	}

	// Arithmetic.
	switch l.kind {
	case rkInt:
		out := make([]int64, len(l.ints))
		arith(out, b.Op, l.ints, r.ints)
		return result{kind: rkInt, ints: out}, nil
	case rkFloat:
		out := make([]float64, len(l.floats))
		arith(out, b.Op, l.floats, r.floats)
		return result{kind: rkFloat, floats: out}, nil
	default:
		return result{}, fmt.Errorf("expr: arithmetic %s on non-numeric operands", b.Op)
	}
}

func toFloat(r result) result {
	out := make([]float64, len(r.ints))
	for i, v := range r.ints {
		out[i] = float64(v)
	}
	return result{kind: rkFloat, floats: out}
}

func lenOf(r result) int {
	switch r.kind {
	case rkBool:
		return len(r.bools)
	case rkInt:
		return len(r.ints)
	case rkFloat:
		return len(r.floats)
	default:
		return len(r.strs)
	}
}

func cmpSlice[T int64 | float64 | string](out []bool, op Op, l, r []T) {
	switch op {
	case OpEq:
		for i := range out {
			out[i] = l[i] == r[i]
		}
	case OpNe:
		for i := range out {
			out[i] = l[i] != r[i]
		}
	case OpLt:
		for i := range out {
			out[i] = l[i] < r[i]
		}
	case OpLe:
		for i := range out {
			out[i] = l[i] <= r[i]
		}
	case OpGt:
		for i := range out {
			out[i] = l[i] > r[i]
		}
	case OpGe:
		for i := range out {
			out[i] = l[i] >= r[i]
		}
	}
}

func arith[T int64 | float64](out []T, op Op, l, r []T) {
	switch op {
	case OpAdd:
		for i := range out {
			out[i] = l[i] + r[i]
		}
	case OpSub:
		for i := range out {
			out[i] = l[i] - r[i]
		}
	case OpMul:
		for i := range out {
			out[i] = l[i] * r[i]
		}
	}
}
