package expr

import (
	"fmt"

	"dqo/internal/hashtable"
)

// AggFunc identifies an aggregation function. All are distributive or
// algebraic, so they can be computed "on the fly" and merged — the property
// the paper relies on for running aggregates inside SPH arrays.
type AggFunc uint8

// Aggregation functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "?"
	}
}

// AggSpec requests one aggregate output column.
type AggSpec struct {
	Func AggFunc
	Col  string // argument column; empty means COUNT(*)
	As   string // output column name
}

// String renders e.g. "SUM(v) AS total".
func (a AggSpec) String() string {
	arg := a.Col
	if arg == "" {
		arg = "*"
	}
	s := fmt.Sprintf("%s(%s)", a.Func, arg)
	if a.As != "" {
		s += " AS " + a.As
	}
	return s
}

// OutName returns the output column name, defaulting to e.g. "count_star" or
// "sum_v" when no alias was given.
func (a AggSpec) OutName() string {
	if a.As != "" {
		return a.As
	}
	arg := a.Col
	if arg == "" {
		arg = "star"
	}
	switch a.Func {
	case AggCount:
		return "count_" + arg
	case AggSum:
		return "sum_" + arg
	case AggMin:
		return "min_" + arg
	case AggMax:
		return "max_" + arg
	case AggAvg:
		return "avg_" + arg
	default:
		return "agg_" + arg
	}
}

// Validate checks the spec's internal consistency.
func (a AggSpec) Validate() error {
	if a.Func > AggAvg {
		return fmt.Errorf("expr: invalid aggregate function %d", a.Func)
	}
	if a.Col == "" && a.Func != AggCount {
		return fmt.Errorf("expr: %s requires an argument column", a.Func)
	}
	return nil
}

// FromState extracts this aggregate's value from a per-group running state.
// The bool result reports whether the value is integral (false = float, used
// by AVG).
func (a AggSpec) FromState(st hashtable.AggState) (int64, float64, bool) {
	switch a.Func {
	case AggCount:
		return st.Count, 0, true
	case AggSum:
		return st.Sum, 0, true
	case AggMin:
		return st.Min, 0, true
	case AggMax:
		return st.Max, 0, true
	case AggAvg:
		if st.Count == 0 {
			return 0, 0, false
		}
		return 0, float64(st.Sum) / float64(st.Count), false
	default:
		return 0, 0, true
	}
}

// Integral reports whether the aggregate produces an integer column.
func (a AggSpec) Integral() bool { return a.Func != AggAvg }
