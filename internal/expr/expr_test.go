package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"dqo/internal/hashtable"
	"dqo/internal/storage"
)

func testRel(t *testing.T) *storage.Relation {
	t.Helper()
	return storage.MustNewRelation("t",
		storage.NewUint32("id", []uint32{1, 2, 3, 4}),
		storage.NewInt64("v", []int64{-10, 0, 10, 20}),
		storage.NewFloat64("f", []float64{0.5, 1.5, 2.5, 3.5}),
		storage.NewString("s", []string{"a", "b", "a", "c"}),
	)
}

func TestEvalPredicateComparisons(t *testing.T) {
	rel := testRel(t)
	cases := []struct {
		e    Expr
		want []bool
	}{
		{Bin{OpEq, Col{"id"}, IntLit{2}}, []bool{false, true, false, false}},
		{Bin{OpNe, Col{"id"}, IntLit{2}}, []bool{true, false, true, true}},
		{Bin{OpLt, Col{"v"}, IntLit{0}}, []bool{true, false, false, false}},
		{Bin{OpLe, Col{"v"}, IntLit{0}}, []bool{true, true, false, false}},
		{Bin{OpGt, Col{"f"}, FloatLit{1.5}}, []bool{false, false, true, true}},
		{Bin{OpGe, Col{"f"}, FloatLit{1.5}}, []bool{false, true, true, true}},
		{Bin{OpEq, Col{"s"}, StrLit{"a"}}, []bool{true, false, true, false}},
	}
	for _, c := range cases {
		got, err := EvalPredicate(c.e, rel)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("%s: row %d = %v, want %v", c.e, i, got[i], c.want[i])
			}
		}
	}
}

func TestEvalLogical(t *testing.T) {
	rel := testRel(t)
	e := Bin{OpAnd,
		Bin{OpGt, Col{"v"}, IntLit{-5}},
		Bin{OpLt, Col{"id"}, IntLit{4}},
	}
	got, err := EvalPredicate(e, rel)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
	or := Bin{OpOr,
		Bin{OpEq, Col{"id"}, IntLit{1}},
		Bin{OpEq, Col{"id"}, IntLit{4}},
	}
	got, err = EvalPredicate(or, rel)
	if err != nil {
		t.Fatal(err)
	}
	want = []bool{true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OR row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvalArithmeticAndPromotion(t *testing.T) {
	rel := testRel(t)
	// (v + 10) * 2 > 25  — int arithmetic
	e := Bin{OpGt, Bin{OpMul, Bin{OpAdd, Col{"v"}, IntLit{10}}, IntLit{2}}, IntLit{25}}
	got, err := EvalPredicate(e, rel)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, true} // (v+10)*2 = 0, 20, 40, 60
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
	// int column compared against float literal: promotion.
	p := Bin{OpGt, Col{"v"}, FloatLit{-0.5}}
	got, err = EvalPredicate(p, rel)
	if err != nil {
		t.Fatal(err)
	}
	want = []bool{false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("promotion row %d = %v, want %v", i, got[i], want[i])
		}
	}
	// float - int subtraction promotes too.
	q := Bin{OpGe, Bin{OpSub, Col{"f"}, IntLit{1}}, FloatLit{1.5}}
	got, err = EvalPredicate(q, rel)
	if err != nil {
		t.Fatal(err)
	}
	want = []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("float-int row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvalErrors(t *testing.T) {
	rel := testRel(t)
	cases := []Expr{
		Col{"missing"},                  // unknown column (as predicate: non-bool too, but eval fails first)
		Bin{OpAnd, Col{"v"}, IntLit{1}}, // AND over non-booleans
		Bin{OpAdd, Col{"s"}, IntLit{1}}, // arithmetic on strings
		Bin{OpEq, Col{"s"}, IntLit{1}},  // type mismatch
		Bin{OpEq, Bin{OpEq, Col{"id"}, IntLit{1}}, Bin{OpEq, Col{"id"}, IntLit{1}}}, // comparing booleans
	}
	for _, e := range cases {
		if _, err := EvalPredicate(e, rel); err == nil {
			t.Errorf("%s: expected error", e)
		}
	}
	// A non-boolean expression is rejected as a predicate.
	if _, err := EvalPredicate(Bin{OpAdd, Col{"v"}, IntLit{1}}, rel); err == nil {
		t.Error("arithmetic accepted as predicate")
	}
}

func TestSelectivity(t *testing.T) {
	rel := testRel(t)
	idx, err := Selectivity(Bin{OpGe, Col{"v"}, IntLit{0}}, rel)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2, 3}
	if len(idx) != len(want) {
		t.Fatalf("idx = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
}

func TestSelectivityMatchesBruteForce(t *testing.T) {
	f := func(vals []int64, threshold int64) bool {
		rel := storage.MustNewRelation("t", storage.NewInt64("v", vals))
		idx, err := Selectivity(Bin{OpLt, Col{"v"}, IntLit{threshold}}, rel)
		if err != nil {
			return false
		}
		var want []int32
		for i, v := range vals {
			if v < threshold {
				want = append(want, int32(i))
			}
		}
		if len(idx) != len(want) {
			return false
		}
		for i := range want {
			if idx[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExprString(t *testing.T) {
	e := Bin{OpAnd, Bin{OpEq, Col{"a"}, IntLit{1}}, Bin{OpLt, Col{"b"}, FloatLit{2.5}}}
	got := e.String()
	if got != "((a = 1) AND (b < 2.5))" {
		t.Fatalf("String = %q", got)
	}
	if (StrLit{"x"}).String() != "'x'" {
		t.Fatal("string literal rendering wrong")
	}
}

func TestExprColumns(t *testing.T) {
	e := Bin{OpAnd, Bin{OpEq, Col{"a"}, IntLit{1}}, Bin{OpLt, Col{"b"}, Col{"c"}}}
	cols := e.Columns(nil)
	want := "a,b,c"
	if strings.Join(cols, ",") != want {
		t.Fatalf("Columns = %v, want %s", cols, want)
	}
}

func TestAggSpecBasics(t *testing.T) {
	st := hashtable.AggState{Count: 4, Sum: 20, Min: -1, Max: 9}
	cases := []struct {
		spec AggSpec
		i    int64
		f    float64
		intg bool
	}{
		{AggSpec{Func: AggCount}, 4, 0, true},
		{AggSpec{Func: AggSum, Col: "v"}, 20, 0, true},
		{AggSpec{Func: AggMin, Col: "v"}, -1, 0, true},
		{AggSpec{Func: AggMax, Col: "v"}, 9, 0, true},
		{AggSpec{Func: AggAvg, Col: "v"}, 0, 5.0, false},
	}
	for _, c := range cases {
		i, f, intg := c.spec.FromState(st)
		if i != c.i || f != c.f || intg != c.intg {
			t.Errorf("%s: got (%d,%g,%v), want (%d,%g,%v)", c.spec, i, f, intg, c.i, c.f, c.intg)
		}
		if c.spec.Integral() != c.intg {
			t.Errorf("%s: Integral mismatch", c.spec)
		}
	}
}

func TestAggSpecNames(t *testing.T) {
	if (AggSpec{Func: AggCount}).OutName() != "count_star" {
		t.Fatal("COUNT(*) default name wrong")
	}
	if (AggSpec{Func: AggSum, Col: "v"}).OutName() != "sum_v" {
		t.Fatal("SUM default name wrong")
	}
	if (AggSpec{Func: AggSum, Col: "v", As: "total"}).OutName() != "total" {
		t.Fatal("alias ignored")
	}
	s := AggSpec{Func: AggAvg, Col: "v", As: "m"}.String()
	if s != "AVG(v) AS m" {
		t.Fatalf("String = %q", s)
	}
}

func TestAggSpecValidate(t *testing.T) {
	if err := (AggSpec{Func: AggSum}).Validate(); err == nil {
		t.Fatal("SUM without column accepted")
	}
	if err := (AggSpec{Func: AggCount}).Validate(); err != nil {
		t.Fatalf("COUNT(*) rejected: %v", err)
	}
	if err := (AggSpec{Func: AggFunc(99), Col: "v"}).Validate(); err == nil {
		t.Fatal("invalid function accepted")
	}
}

func TestAvgOfEmptyState(t *testing.T) {
	_, f, intg := (AggSpec{Func: AggAvg, Col: "v"}).FromState(hashtable.AggState{})
	if intg || f != 0 {
		t.Fatal("AVG of empty state should be float 0")
	}
}
