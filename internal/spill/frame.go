package spill

import (
	"bytes"
	"encoding/binary"
	"math"

	"dqo/internal/qerr"
	"dqo/internal/storage"
)

// encodeFrame serialises rel into buf (payload only — the caller frames it
// with magic/length/checksum). dicts tracks which columns' dictionaries
// this run has already carried, so each dictionary is written once per run.
func encodeFrame(buf *bytes.Buffer, rel *storage.Relation, dicts *map[string]bool) error {
	var scratch [8]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf.Write(scratch[:4])
	}
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		buf.Write(scratch[:8])
	}
	putStr := func(s string) {
		putU32(uint32(len(s)))
		buf.WriteString(s)
	}

	cols := rel.Columns()
	putStr(rel.Name())
	putU32(uint32(len(cols)))
	putU32(uint32(rel.NumRows()))
	for _, c := range cols {
		buf.WriteByte(byte(c.Kind()))
		hasDict := byte(0)
		if c.Kind() == storage.KindString {
			if *dicts == nil {
				*dicts = make(map[string]bool)
			}
			if !(*dicts)[c.Name()] {
				hasDict = 1
				(*dicts)[c.Name()] = true
			}
		}
		buf.WriteByte(hasDict)
		putStr(c.Name())
		if hasDict == 1 {
			d := c.Dict()
			putU32(uint32(d.Len()))
			for i := 0; i < d.Len(); i++ {
				putStr(d.Lookup(uint32(i)))
			}
		}
		switch c.Kind() {
		case storage.KindUint32, storage.KindString:
			for _, v := range c.Uint32s() {
				putU32(v)
			}
		case storage.KindUint64:
			for _, v := range c.Uint64s() {
				putU64(v)
			}
		case storage.KindInt64:
			for _, v := range c.Int64s() {
				putU64(uint64(v))
			}
		case storage.KindFloat64:
			for _, v := range c.Float64s() {
				putU64(math.Float64bits(v))
			}
		default:
			return qerr.New(qerr.ErrSpillIO, "cannot spill column %q of kind %v", c.Name(), c.Kind())
		}
	}
	return nil
}

// frameReader is a bounds-checked cursor over a frame payload; any
// truncation surfaces as a typed corrupt-frame error.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (f *frameReader) take(n int) []byte {
	if f.err != nil {
		return nil
	}
	if f.off+n > len(f.b) {
		f.err = qerr.New(qerr.ErrSpillIO, "corrupt spill frame: truncated payload (%d of %d bytes)", len(f.b), f.off+n)
		return nil
	}
	s := f.b[f.off : f.off+n]
	f.off += n
	return s
}

func (f *frameReader) u8() byte {
	s := f.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (f *frameReader) u32() uint32 {
	s := f.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (f *frameReader) u64() uint64 {
	s := f.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (f *frameReader) str() string {
	n := int(f.u32())
	s := f.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

// decodeFrame reconstructs a relation from a frame payload. String columns
// are re-interned through the dicts pool so every batch of a column shares
// one dictionary with the original code assignment (see Run.Open). remaps
// carries frame-code → pool-code translations across a run's frames (later
// frames reference the dictionary of the first without re-carrying it); it
// stays empty when the pool already holds the original dictionaries.
func decodeFrame(payload []byte, dicts map[string]*storage.Dict, remaps map[string][]uint32) (*storage.Relation, error) {
	f := &frameReader{b: payload}
	name := f.str()
	ncols := int(f.u32())
	nrows := int(f.u32())
	if f.err != nil {
		return nil, f.err
	}
	if ncols < 0 || ncols > 1<<20 || nrows < 0 {
		return nil, qerr.New(qerr.ErrSpillIO, "corrupt spill frame: %d columns, %d rows", ncols, nrows)
	}
	cols := make([]*storage.Column, 0, ncols)
	for ci := 0; ci < ncols; ci++ {
		kind := storage.Kind(f.u8())
		hasDict := f.u8()
		cname := f.str()
		if f.err != nil {
			return nil, f.err
		}
		if hasDict == 1 {
			nd := int(f.u32())
			pool := dicts[cname]
			if pool == nil {
				pool = storage.NewDict()
				dicts[cname] = pool
			}
			var remap []uint32 // frame code -> pool code, nil when identical
			for i := 0; i < nd; i++ {
				s := f.str()
				if f.err != nil {
					return nil, f.err
				}
				code := pool.Intern(s)
				if code != uint32(i) && remap == nil {
					remap = make([]uint32, nd)
					for j := 0; j < i; j++ {
						remap[j] = uint32(j)
					}
				}
				if remap != nil {
					remap[i] = code
				}
			}
			if remap != nil {
				remaps[cname] = remap
			}
		}
		remap := remaps[cname]
		switch kind {
		case storage.KindUint32:
			vals := make([]uint32, nrows)
			for i := range vals {
				vals[i] = f.u32()
			}
			cols = append(cols, storage.NewUint32(cname, vals))
		case storage.KindString:
			pool := dicts[cname]
			if pool == nil {
				return nil, qerr.New(qerr.ErrSpillIO, "corrupt spill frame: string column %q before its dictionary", cname)
			}
			codes := make([]uint32, nrows)
			for i := range codes {
				c := f.u32()
				if remap != nil {
					if int(c) >= len(remap) {
						return nil, qerr.New(qerr.ErrSpillIO, "corrupt spill frame: code %d outside dictionary (%d)", c, len(remap))
					}
					c = remap[c]
				}
				codes[i] = c
			}
			cols = append(cols, storage.NewStringCodes(cname, codes, pool))
		case storage.KindUint64:
			vals := make([]uint64, nrows)
			for i := range vals {
				vals[i] = f.u64()
			}
			cols = append(cols, storage.NewUint64(cname, vals))
		case storage.KindInt64:
			vals := make([]int64, nrows)
			for i := range vals {
				vals[i] = int64(f.u64())
			}
			cols = append(cols, storage.NewInt64(cname, vals))
		case storage.KindFloat64:
			vals := make([]float64, nrows)
			for i := range vals {
				vals[i] = math.Float64frombits(f.u64())
			}
			cols = append(cols, storage.NewFloat64(cname, vals))
		default:
			return nil, qerr.New(qerr.ErrSpillIO, "corrupt spill frame: column %q has invalid kind %d", cname, kind)
		}
		if f.err != nil {
			return nil, f.err
		}
	}
	rel, err := storage.NewRelation(name, cols...)
	if err != nil {
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	return rel, nil
}
