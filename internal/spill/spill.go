// Package spill provides budget-accounted temp-file runs for operators that
// outgrow their memory budget: a per-query Dir of run files, a RunWriter
// that serialises relation batches into CRC-checksummed frames, and a
// RunReader that streams them back. Every byte written is charged against
// the query's disk budget (qerr.ErrSpillLimitExceeded past the limit), every
// I/O failure surfaces as a typed qerr.ErrSpillIO, and Dir.Cleanup removes
// the whole directory no matter how the query ended — the executor calls it
// from the drive loop's deferred close path, so cancelled and panicking
// queries leak neither files nor descriptors.
//
// Frame format (little-endian), one frame per appended batch:
//
//	magic   uint32  "DQSP"
//	length  uint32  payload bytes
//	crc32   uint32  IEEE checksum of the payload
//	payload:
//	  ncols uint32, nrows uint32
//	  per column:
//	    kind uint8, hasDict uint8, len(name) uint16, name bytes
//	    [hasDict: ndict uint32, then per string: len uint32, bytes]
//	    raw values (uint32/codes: 4 B per row; 64-bit kinds: 8 B per row)
//
// A dictionary is serialised in full (all codes in order) the first time a
// string column appears in a run; readers re-intern it into the caller's
// dictionary pool so reconstructed columns keep the original code
// assignment — dictionary codes order sorts and groupings, so code fidelity
// is what makes spilled plans byte-identical to in-memory ones.
package spill

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dqo/internal/faultinject"
	"dqo/internal/govern"
	"dqo/internal/qerr"
	"dqo/internal/storage"
)

const frameMagic uint32 = 0x44515350 // "DQSP"

// Dir is a per-query spill directory: it hands out run files, accounts
// their bytes against the query's disk budget, and removes everything on
// Cleanup. Safe for concurrent use.
type Dir struct {
	path    string
	ctl     *govern.Ctl // disk-budget account (nil-safe)
	mu      sync.Mutex
	nextID  int
	live    int64 // bytes currently on disk (released on run removal)
	written atomic.Int64
	removed bool
}

// NewDir creates a fresh spill directory under parent (os.TempDir() when
// empty), charging disk bytes against ctl's disk budget.
func NewDir(parent string, ctl *govern.Ctl) (*Dir, error) {
	if parent == "" {
		parent = os.TempDir()
	}
	path, err := os.MkdirTemp(parent, "dqo-spill-*")
	if err != nil {
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	return &Dir{path: path, ctl: ctl}, nil
}

// Path reports the directory holding this query's run files.
func (d *Dir) Path() string { return d.path }

// Written reports the total bytes ever written to this directory's runs
// (monotonic; removal of a run does not subtract).
func (d *Dir) Written() int64 {
	if d == nil {
		return 0
	}
	return d.written.Load()
}

// Cleanup removes the spill directory and everything in it, releasing the
// disk-budget bytes still accounted to live runs. It is idempotent; the
// first failure is reported as a typed qerr.ErrSpillIO.
func (d *Dir) Cleanup() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.removed {
		return nil
	}
	d.removed = true
	d.ctl.ReleaseDisk(d.live)
	d.live = 0
	if err := faultinject.Fire(faultinject.PointSpillCleanup); err != nil {
		os.RemoveAll(d.path) // injected failure still must not leak files
		return qerr.Wrap(qerr.ErrSpillIO, err)
	}
	if err := os.RemoveAll(d.path); err != nil {
		return qerr.Wrap(qerr.ErrSpillIO, err)
	}
	return nil
}

// NewRun opens a fresh run file for writing. The label only names the file
// for post-mortem inspection of a kept spill directory.
func (d *Dir) NewRun(label string) (*RunWriter, error) {
	d.mu.Lock()
	if d.removed {
		d.mu.Unlock()
		return nil, qerr.New(qerr.ErrSpillIO, "spill directory already cleaned up")
	}
	id := d.nextID
	d.nextID++
	d.mu.Unlock()
	name := filepath.Join(d.path, fmt.Sprintf("run-%04d-%s.dqs", id, sanitize(label)))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	return &RunWriter{d: d, f: f, w: bufio.NewWriterSize(f, 64<<10), path: name}, nil
}

func sanitize(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			b[i] = '_'
		}
	}
	if len(b) > 32 {
		b = b[:32]
	}
	return string(b)
}

// account charges freshly written bytes to the disk budget and the
// directory's live total.
func (d *Dir) account(n int64) error {
	if err := d.ctl.ReserveDisk(n); err != nil {
		return err
	}
	d.mu.Lock()
	d.live += n
	d.mu.Unlock()
	d.written.Add(n)
	return nil
}

// forget releases removed-run bytes back to the disk budget.
func (d *Dir) forget(n int64) {
	d.mu.Lock()
	if d.removed {
		d.mu.Unlock()
		return // Cleanup already released everything
	}
	d.live -= n
	d.mu.Unlock()
	d.ctl.ReleaseDisk(n)
}

// RunWriter serialises relation batches into one run file. Not safe for
// concurrent use.
type RunWriter struct {
	d     *Dir
	f     *os.File
	w     *bufio.Writer
	path  string
	bytes int64
	rows  int64
	dicts map[string]bool // columns whose dictionary is already in this run
	buf   bytes.Buffer
}

// Append serialises rel as one checksummed frame at the end of the run,
// charging the frame bytes against the disk budget first.
func (w *RunWriter) Append(rel *storage.Relation) error {
	if err := faultinject.Fire(faultinject.PointSpillWrite); err != nil {
		return qerr.Wrap(qerr.ErrSpillIO, err)
	}
	w.buf.Reset()
	if err := encodeFrame(&w.buf, rel, &w.dicts); err != nil {
		return err
	}
	payload := w.buf.Bytes()
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(payload))
	frame := int64(len(hdr) + len(payload))
	if err := w.d.account(frame); err != nil {
		return err
	}
	if _, err := w.w.Write(hdr[:]); err != nil {
		return qerr.Wrap(qerr.ErrSpillIO, err)
	}
	if n, err := w.w.Write(payload); err != nil {
		return qerr.Wrap(qerr.ErrSpillIO, err)
	} else if n != len(payload) {
		return qerr.New(qerr.ErrSpillIO, "short write: %d of %d bytes", n, len(payload))
	}
	w.bytes += frame
	w.rows += int64(rel.NumRows())
	return nil
}

// BytesWritten reports the run bytes written so far (frames + headers).
func (w *RunWriter) BytesWritten() int64 { return w.bytes }

// Finish flushes and closes the run file, returning a handle for reading it
// back.
func (w *RunWriter) Finish() (*Run, error) {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	if err := w.f.Close(); err != nil {
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	return &Run{d: w.d, path: w.path, Bytes: w.bytes, Rows: w.rows}, nil
}

// Abort closes and deletes a half-written run, returning its bytes to the
// disk budget.
func (w *RunWriter) Abort() {
	w.f.Close()
	os.Remove(w.path)
	w.d.forget(w.bytes)
}

// Run is a finished, readable run file.
type Run struct {
	d     *Dir
	path  string
	Bytes int64
	Rows  int64
}

// Open returns a reader streaming the run's frames back. Readers
// reconstruct string columns through dicts, a pool keyed by column name:
// seeding it with the original columns' dictionaries makes decoded batches
// share those exact dictionary objects (and code assignment), which keeps
// spilled results byte-identical and lets storage.Concat take its
// shared-dictionary fast path. A nil pool re-interns per run.
func (r *Run) Open(dicts map[string]*storage.Dict) (*RunReader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	if dicts == nil {
		dicts = make(map[string]*storage.Dict)
	}
	return &RunReader{f: f, r: bufio.NewReaderSize(f, 64<<10), dicts: dicts,
		remaps: make(map[string][]uint32)}, nil
}

// Remove deletes the run file early (before Cleanup), releasing its bytes
// from the disk budget so long-running queries return spill space as merge
// passes retire their inputs.
func (r *Run) Remove() error {
	if err := os.Remove(r.path); err != nil && !os.IsNotExist(err) {
		return qerr.Wrap(qerr.ErrSpillIO, err)
	}
	r.d.forget(r.Bytes)
	r.Bytes = 0
	return nil
}

// RunReader streams a run's frames back as relations. Not safe for
// concurrent use.
type RunReader struct {
	f      *os.File
	r      *bufio.Reader
	dicts  map[string]*storage.Dict
	remaps map[string][]uint32
	buf    []byte
}

// Next returns the run's next batch, or (nil, nil) once the run is
// exhausted. A corrupt frame (bad magic or checksum mismatch) is a typed
// qerr.ErrSpillIO.
func (r *RunReader) Next() (*storage.Relation, error) {
	if err := faultinject.Fire(faultinject.PointSpillRead); err != nil {
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return nil, qerr.New(qerr.ErrSpillIO, "corrupt spill frame: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, qerr.Wrap(qerr.ErrSpillIO, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[8:]); got != want {
		return nil, qerr.New(qerr.ErrSpillIO, "corrupt spill frame: checksum %#x, want %#x", got, want)
	}
	return decodeFrame(payload, r.dicts, r.remaps)
}

// Close releases the reader's file descriptor.
func (r *RunReader) Close() error {
	if err := r.f.Close(); err != nil {
		return qerr.Wrap(qerr.ErrSpillIO, err)
	}
	return nil
}
