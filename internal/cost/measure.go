package cost

import (
	"time"

	"dqo/internal/hashtable"
	"dqo/internal/physical"
	"dqo/internal/props"
	"dqo/internal/sortx"
	"dqo/internal/xrand"
)

// Measure fits a Calibrated model to *this* machine by timing the actual
// kernels on synthetic data of about rows rows (minimum 64Ki). It is the
// learned-cost-model counterpart the paper gestures at via the Data
// Calculator citation [7]: the right molecule is an empirical fact, so the
// model asks the hardware. Intended for offline use (cmd/dqobench
// -calibrate); a call takes a few hundred milliseconds at the default size.
func Measure(rows int) *Calibrated {
	if rows < 1<<16 {
		rows = 1 << 16
	}
	m := NewCalibrated() // start from shipped defaults, overwrite measured parts
	r := xrand.New(0xCA11B8)

	const groups = 8192
	sparse := make([]uint32, rows)
	for i := range sparse {
		sparse[i] = r.Uint32() &^ 7 // sparse-ish domain
	}
	sparseG := make([]uint32, rows)
	for i := range sparseG {
		sparseG[i] = (r.Uint32() % groups) * 524287 // exactly <= groups distinct, spread out
	}
	dense := make([]uint32, rows)
	for i := range dense {
		dense[i] = r.Uint32() % groups
	}
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i & 1023)
	}
	domOf := func(keys []uint32) props.Domain {
		mn, mx := keys[0], keys[0]
		d := map[uint32]struct{}{}
		for _, k := range keys {
			if k < mn {
				mn = k
			}
			if k > mx {
				mx = k
			}
			d[k] = struct{}{}
		}
		return props.Domain{Known: true, Lo: uint64(mn), Hi: uint64(mx),
			Distinct: int64(len(d)), Dense: uint64(len(d)) == uint64(mx)-uint64(mn)+1}
	}
	sparseDom := domOf(sparseG)
	denseDom := domOf(dense)

	nsPerRow := func(fn func()) float64 {
		start := time.Now()
		fn()
		return float64(time.Since(start).Nanoseconds()) / float64(rows)
	}

	// Hash-table molecules: time every scheme x function combination and
	// decompose additively (row/column effects around the grand mean).
	schemes := hashtable.Schemes()
	funcs := hashtable.Funcs()
	times := make([][]float64, len(schemes))
	grand := 0.0
	for si, s := range schemes {
		times[si] = make([]float64, len(funcs))
		for fi, f := range funcs {
			opt := physical.GroupOptions{Scheme: s, Hash: f}
			times[si][fi] = nsPerRow(func() {
				_, _ = physical.Group(physical.HG, sparseG, vals, sparseDom, opt)
			})
			grand += times[si][fi]
		}
	}
	grand /= float64(len(schemes) * len(funcs))
	colMean := make([]float64, len(funcs))
	for fi := range funcs {
		for si := range schemes {
			colMean[fi] += times[si][fi]
		}
		colMean[fi] /= float64(len(schemes))
	}
	minCol := colMean[0]
	for _, c := range colMean {
		if c < minCol {
			minCol = c
		}
	}
	for fi, f := range funcs {
		m.HashNS[f] = colMean[fi] - minCol + 0.5 // cheapest function ~0.5 ns
	}
	for si, s := range schemes {
		rowMean := 0.0
		for fi := range funcs {
			rowMean += times[si][fi] - m.HashNS[funcs[fi]]
		}
		m.SchemeNS[s] = rowMean / float64(len(funcs))
	}

	// Sort molecules.
	buf := make([]uint32, rows)
	timeSort := func(k sortx.Kind) float64 {
		copy(buf, sparse)
		return nsPerRow(func() { sortx.SortUint32(k, buf) })
	}
	l2 := log2(float64(rows))
	m.RadixRowNS = timeSort(sortx.Radix)
	m.CmpRowNS = timeSort(sortx.Comparison) / l2
	m.StdRowNS = timeSort(sortx.Std) / l2

	// Array/scan kernels.
	m.SPHRowNS = nsPerRow(func() {
		_, _ = physical.Group(physical.SPHG, dense, vals, denseDom, physical.GroupOptions{})
	})
	sorted := make([]uint32, rows)
	copy(sorted, dense)
	sortx.SortUint32(sortx.Radix, sorted)
	m.OGRowNS = nsPerRow(func() {
		_, _ = physical.Group(physical.OG, sorted, vals, denseDom, physical.GroupOptions{})
	})
	bs := nsPerRow(func() {
		_, _ = physical.Group(physical.BSG, sparseG, vals, sparseDom, physical.GroupOptions{})
	})
	m.BSRowLogNS = bs / log2(groups)

	// Cache penalty: HG per-row cost growth from few to many groups.
	fewDom := props.Domain{Known: true, Lo: 0, Hi: 255, Distinct: 256, Dense: true}
	few := make([]uint32, rows)
	for i := range few {
		few[i] = dense[i] % 256
	}
	tFew := nsPerRow(func() {
		_, _ = physical.Group(physical.HG, few, vals, fewDom, physical.GroupOptions{})
	})
	tMany := times[0][0] // chained/murmur at `groups` groups
	if tMany > tFew && groups > int(m.CacheGroups) {
		m.CacheNS = (tMany - tFew) / log2(float64(groups)/m.CacheGroups)
	}
	// Clamp against degenerate measurements (e.g. noisy CI machines).
	clamp := func(x *float64, lo float64) {
		if *x < lo {
			*x = lo
		}
	}
	for s := range m.SchemeNS {
		v := m.SchemeNS[s]
		clamp(&v, 0.5)
		m.SchemeNS[s] = v
	}
	clamp(&m.RadixRowNS, 0.2)
	clamp(&m.CmpRowNS, 0.05)
	clamp(&m.StdRowNS, 0.05)
	clamp(&m.SPHRowNS, 0.2)
	clamp(&m.OGRowNS, 0.2)
	clamp(&m.BSRowLogNS, 0.05)
	clamp(&m.CacheNS, 0)
	return m
}
