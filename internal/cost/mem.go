package cost

import (
	"dqo/internal/physical"
	"dqo/internal/physio"
)

// Working-memory footprint estimators, in bytes. They mirror the runtime
// accounting of internal/physical's kernels (the resv charges): hash tables
// by directory-plus-arena size, sorts by permutation scratch, SPH kernels by
// domain-width state arrays. Each returns the kernel's *transient* working
// set — beyond the materialised input and the emitted output, which the
// optimiser charges separately per plan node. A mode with a MemBudget
// compares total plan footprints against it to prune alternatives that
// cannot fit; the runtime govern.Budget is the enforcement backstop.

const (
	// hashEntryBytes is one chained-table arena entry (key, next link,
	// aggregate state) plus its share of the bucket directory.
	hashEntryBytes = 48
	// sphStateBytes is one slot of an SPH state array (aggregate state).
	sphStateBytes = 32
	// pairBytes is one (left, right) row-index pair of a join result.
	pairBytes = 8
	// sortScratchBytes is the per-row permutation scratch of a sort.
	sortScratchBytes = 8
	// groupDirBytes is one entry of the sorted group directory the
	// OG/SOG/BSG kernels accumulate (4-byte key + 32-byte agg state),
	// matching the kernels' runtime resv charges.
	groupDirBytes = 36
)

// MemSort estimates the scratch bytes of a sort enforcer over rows rows.
// The parallel variant doubles it: per-worker sorted runs plus the k-way
// merge's swap buffer live at once.
func MemSort(rows float64, parallel bool) float64 {
	per := float64(sortScratchBytes)
	if parallel {
		per *= 2
	}
	return per * rows
}

// MemGroup estimates the transient working set of a grouping choice over
// rows input rows yielding groups groups.
func MemGroup(c physio.GroupChoice, rows, groups float64) float64 {
	switch c.Kind {
	case physical.HG:
		tables := 1.0
		if p := c.Opt.Parallel; p > 1 {
			// Per-worker partial tables plus the merged result coexist.
			tables = float64(p) + 1
		}
		return tables * groups * hashEntryBytes
	case physical.SPHG:
		// Dense domain: width ~ distinct keys; parallel loads keep one state
		// array per worker before the merge.
		lanes := 1.0
		if p := c.Opt.Parallel; p > 1 {
			lanes = float64(p)
		}
		return (lanes + 1) * groups * sphStateBytes
	case physical.SOG:
		return MemSort(rows, c.Opt.Parallel > 1) + groups*groupDirBytes
	case physical.OG, physical.BSG:
		// Streaming, but both accumulate the sorted group directory before
		// the output columns are materialised.
		return groups * groupDirBytes
	default:
		return 0
	}
}

// MemJoin estimates the transient working set of a join choice: build rows
// on the build side, probe on the probe side, keyDistinct distinct build
// keys, out emitted pairs.
func MemJoin(c physio.JoinChoice, build, probe, keyDistinct, out float64) float64 {
	switch c.Kind {
	case physical.HJ:
		table := build * 16 // directory + (key, row, next) arena
		if c.Opt.Parallel > 1 {
			table += build * 8 // radix-partition key/index copies
		}
		return table + out*pairBytes
	case physical.SPHJ:
		return keyDistinct*4 + build*4 + out*pairBytes // heads + next chains
	case physical.OJ:
		return out * pairBytes
	case physical.SOJ:
		per := float64(sortScratchBytes)
		if c.Opt.Parallel > 1 {
			per += 4
		}
		return per*(build+probe) + out*pairBytes
	case physical.BSJ:
		return build*8 + out*pairBytes // sorted (key, row) copy of the build side
	default:
		return 0
	}
}
