// Package cost implements the cost models the optimisers minimise.
//
// Paper is the verbatim Table 2 model of the paper: abstract per-element
// costs per algorithm family (it cannot see below the family level, which is
// all the paper's Figure 5 experiment needs).
//
// Calibrated is a molecule-aware model: nanosecond-scale per-row
// coefficients that differ by hash-table scheme, hash function, sort
// algorithm, and loop parallelism — the model a deep optimiser needs to
// discriminate choices the paper model considers identical.
package cost

import (
	"math"

	"dqo/internal/hashtable"
	"dqo/internal/physical"
	"dqo/internal/physio"
	"dqo/internal/props"
	"dqo/internal/sortx"
)

// Model estimates costs of physical plan steps. Group and Join receive the
// fully resolved choice (family plus molecules), the input cardinalities,
// and the number of distinct keys (BSG/BSJ cost depends on it).
type Model interface {
	// Name identifies the model in EXPLAIN output.
	Name() string
	// Scan returns the cost of producing rows from a base table.
	Scan(rows float64) float64
	// Filter returns the cost of filtering rows input rows.
	Filter(rows float64) float64
	// SortBy returns the cost of the sort enforcer on rows rows.
	SortBy(rows float64, kind sortx.Kind) float64
	// Group returns the cost of grouping rows input rows into groups groups.
	Group(c physio.GroupChoice, rows, groups float64) float64
	// Join returns the cost of joining build rows (with keyDistinct distinct
	// keys) against probe rows.
	Join(c physio.JoinChoice, build, probe, keyDistinct float64) float64
	// Parallel returns the cost of running work costing c serially across
	// dop workers, including fork/merge overhead. Models that cannot see
	// parallelism (Paper) return c unchanged, which makes parallel variants
	// tie with serial ones — and ties resolve to the first-enumerated
	// (serial) variant, preserving those models' plans exactly.
	Parallel(c float64, dop int) float64
	// ScanCompressed returns the cost of producing rows from a base table
	// stored with the given segment encoding (decode-once + stream). Models
	// blind to storage format (Paper) price it like Scan, so compressed
	// granule twins tie and lose to the first-enumerated plain plan.
	ScanCompressed(rows float64, enc props.Compression) float64
	// FilterCompressed returns the cost of a range/equality filter evaluated
	// directly on a compressed column: rows input rows, work the encoded
	// units actually compared (runs or packed values in segments the zone
	// maps could not answer), and out the qualifying rows gathered. work and
	// out come from the segment zone metadata at plan time, so the model sees
	// exactly how much of the payload the predicate must touch.
	FilterCompressed(rows, work, out float64, enc props.Compression) float64
	// Spill returns the cost of running work costing c in-memory as the
	// spilling twin over rows input rows with the given number of disk
	// passes (a pass writes and reads every row once). Spill twins are only
	// enumerated when no in-memory variant fits the memory budget, so this
	// prices degradation, not a competitive alternative — it must exceed c
	// whenever rows > 0 so an in-memory plan that fits always wins.
	Spill(c, rows, passes float64) float64
}

func log2(x float64) float64 {
	if x < 2 {
		return 0
	}
	return math.Log2(x)
}

// Paper is the Table 2 cost model, verbatim:
//
//	HG(R)   = 4·|R|            HJ(R,S)   = 4·(|R|+|S|)
//	OG(R)   = |R|              OJ(R,S)   = |R|+|S|
//	SOG(R)  = |R|·log2|R|+|R|  SOJ(R,S)  = |R|·log2|R|+|S|·log2|S|+|R|+|S|
//	SPHG(R) = |R|              SPHJ(R,S) = |R|+|S|
//	BSG(R)  = |R|·log2(G)      BSJ(R,S)  = (|R|+|S|)·log2(G)
//
// The sort enforcer costs |R|·log2|R| — exactly SOG minus OG — so an
// explicitly enforced sort followed by an order-based operator prices the
// same as the fused sort-based operator. Scans are free, as in the paper's
// hand calculation.
type Paper struct{}

// Name implements Model.
func (Paper) Name() string { return "paper" }

// Scan implements Model.
func (Paper) Scan(rows float64) float64 { return 0 }

// Parallel implements Model. The paper's Table 2 model counts abstract
// element operations and is blind to multicore, so work costs the same at
// any degree of parallelism.
func (Paper) Parallel(c float64, dop int) float64 { return c }

// Filter implements Model.
func (Paper) Filter(rows float64) float64 { return rows }

// ScanCompressed implements Model: the paper's model counts abstract element
// operations and cannot see storage format, so compressed scans tie with
// plain ones (and ties keep the first-enumerated plain plan).
func (Paper) ScanCompressed(rows float64, _ props.Compression) float64 { return 0 }

// FilterCompressed implements Model: identical to Filter for the same
// reason — |R| comparisons regardless of representation.
func (Paper) FilterCompressed(rows, _, _ float64, _ props.Compression) float64 { return rows }

// Spill implements Model: the in-memory work plus one abstract element
// operation per row per disk pass (each pass writes and reads every row).
func (Paper) Spill(c, rows, passes float64) float64 { return c + rows*passes }

// SortBy implements Model.
func (Paper) SortBy(rows float64, _ sortx.Kind) float64 { return rows * log2(rows) }

// Group implements Model.
func (Paper) Group(c physio.GroupChoice, rows, groups float64) float64 {
	switch c.Kind {
	case physical.HG:
		return 4 * rows
	case physical.OG:
		return rows
	case physical.SOG:
		return rows*log2(rows) + rows
	case physical.SPHG:
		return rows
	case physical.BSG:
		return rows * log2(groups)
	default:
		return math.Inf(1)
	}
}

// Join implements Model.
func (Paper) Join(c physio.JoinChoice, build, probe, keyDistinct float64) float64 {
	switch c.Kind {
	case physical.HJ:
		return 4 * (build + probe)
	case physical.OJ:
		return build + probe
	case physical.SOJ:
		return build*log2(build) + probe*log2(probe) + build + probe
	case physical.SPHJ:
		return build + probe
	case physical.BSJ:
		return (build + probe) * log2(keyDistinct)
	default:
		return math.Inf(1)
	}
}

// Calibrated is a per-row nanosecond model whose coefficients discriminate
// molecule-level choices. The defaults were fitted by hand against this
// repository's own microbenchmarks on a commodity x86-64 box; Fit adjusts
// nothing automatically (measurement-driven calibration is a cmd/dqobench
// option) — the point is the *structure*: the deep optimiser can only
// exploit molecule choices if the model can tell them apart.
type Calibrated struct {
	// Hash-table insert cost per row by scheme (ns).
	SchemeNS map[hashtable.Scheme]float64
	// Hash function evaluation cost per row (ns).
	HashNS map[hashtable.Func]float64
	// Sort cost: per-row fixed for radix, per-row-per-log2(n) otherwise.
	RadixRowNS float64
	CmpRowNS   float64
	StdRowNS   float64
	// Array/scan kernels (ns per row).
	SPHRowNS   float64
	OGRowNS    float64
	BSRowLogNS float64 // per row per log2(groups)
	ProbeNS    float64 // per probe overhead in joins
	// Parallel load: fixed fork/merge overhead (ns) and efficiency factor.
	ParallelFixedNS float64
	ParallelEff     float64
	// Cache penalty: hash inserts slow as the working set exceeds cache;
	// modelled as +CacheNS per row per log2(groups) above CacheGroups.
	CacheGroups float64
	CacheNS     float64
	// Compressed-storage kernels: one-shot sequential decode per row
	// (cheaper than the per-morsel lazy slicing a plain scan of encoded
	// storage pays), per encoded unit compared in partial segments, and per
	// qualifying row gathered from the payload.
	EncScanRowNS float64
	EncWorkNS    float64
	EncEmitNS    float64
	// Spill I/O: serialise + write + read + decode per row per disk pass.
	SpillRowNS float64
}

// NewCalibrated returns the default-coefficient calibrated model. The
// defaults were fitted against this repository's own A1-A3 ablation runs
// (cmd/dqobench -experiment ablations; see EXPERIMENTS.md): at 10 M
// unsorted sparse rows with 10 000 groups the flat-arena chained table is
// the cheapest insert path (~12 ns/row), open addressing pays for its
// displacement logic, the hash-function spread is small on uniform keys,
// and LSD radix beats comparison sorting by an order of magnitude.
func NewCalibrated() *Calibrated {
	return &Calibrated{
		SchemeNS: map[hashtable.Scheme]float64{
			hashtable.Chained:     11.0,
			hashtable.LinearProbe: 13.0,
			hashtable.RobinHood:   14.0,
		},
		HashNS: map[hashtable.Func]float64{
			hashtable.Murmur3Fin:    1.2,
			hashtable.Fibonacci:     0.7,
			hashtable.MultiplyShift: 0.8,
			hashtable.Identity:      0.5,
		},
		RadixRowNS:      4.5,
		CmpRowNS:        2.2,
		StdRowNS:        2.1,
		SPHRowNS:        2.4,
		OGRowNS:         1.3,
		BSRowLogNS:      0.9,
		ProbeNS:         1.2,
		ParallelFixedNS: 60000,
		ParallelEff:     0.75,
		CacheGroups:     4096,
		CacheNS:         0.5,
		EncScanRowNS:    0.15,
		EncWorkNS:       1.0,
		EncEmitNS:       2.0,
		SpillRowNS:      40.0,
	}
}

// Name implements Model.
func (*Calibrated) Name() string { return "calibrated" }

// Scan implements Model.
func (*Calibrated) Scan(rows float64) float64 { return 0.25 * rows }

// Parallel implements Model: Amdahl-style speedup with an efficiency factor
// plus a fixed fork/merge overhead, the same term SPHG's parallel load has
// always used. dop <= 1 is serial and free of overhead.
func (m *Calibrated) Parallel(c float64, dop int) float64 {
	if dop <= 1 {
		return c
	}
	return c/(float64(dop)*m.ParallelEff) + m.ParallelFixedNS
}

// Filter implements Model.
func (*Calibrated) Filter(rows float64) float64 { return 1.5 * rows }

// ScanCompressed implements Model: a compressed scan decodes each segment
// once into a streamable buffer, beating the plain scan's per-morsel view
// bookkeeping over the same encoded storage.
func (m *Calibrated) ScanCompressed(rows float64, _ props.Compression) float64 {
	return m.EncScanRowNS * rows
}

// FilterCompressed implements Model. The decoded alternative pays
// Filter(rows) = 1.5·rows; the direct kernel pays only for the encoded
// units the zone maps could not answer plus the qualifying-row gather, so
// run-heavy or zone-prunable columns undercut it and the optimiser picks
// the compressed granule exactly where the payload shape earns it.
func (m *Calibrated) FilterCompressed(rows, work, out float64, _ props.Compression) float64 {
	return m.EncWorkNS*work + m.EncEmitNS*out
}

// Spill implements Model: the in-memory kernel's work plus the frame
// serialise/write/read/decode round trip for every row on every disk pass.
func (m *Calibrated) Spill(c, rows, passes float64) float64 {
	return c + m.SpillRowNS*rows*passes
}

// SortBy implements Model.
func (m *Calibrated) SortBy(rows float64, kind sortx.Kind) float64 {
	return m.sortCost(rows, kind)
}

func (m *Calibrated) sortCost(rows float64, kind sortx.Kind) float64 {
	switch kind {
	case sortx.Radix:
		return m.RadixRowNS * rows
	case sortx.Comparison:
		return m.CmpRowNS * rows * log2(rows)
	default:
		return m.StdRowNS * rows * log2(rows)
	}
}

// cachePenalty models the growing per-insert cost of a hash table whose
// directory outgrows the cache hierarchy — the effect behind HG's rising
// curve in the paper's unsorted-dense plot.
func (m *Calibrated) cachePenalty(groups float64) float64 {
	if groups <= m.CacheGroups {
		return 0
	}
	return m.CacheNS * log2(groups/m.CacheGroups)
}

// Group implements Model.
func (m *Calibrated) Group(c physio.GroupChoice, rows, groups float64) float64 {
	switch c.Kind {
	case physical.HG:
		perRow := m.SchemeNS[c.Opt.Scheme] + m.HashNS[c.Opt.Hash] + m.cachePenalty(groups)
		if p := c.Opt.Parallel; p > 1 {
			// Parallel partial tables, merged sequentially: one AddState per
			// group per partial table.
			return m.Parallel(perRow*rows, p) + perRow*groups*float64(p)
		}
		return perRow * rows
	case physical.SPHG:
		base := m.SPHRowNS * rows
		if p := float64(c.Opt.Parallel); p > 1 {
			return base/(p*m.ParallelEff) + m.ParallelFixedNS + m.SPHRowNS*groups
		}
		return base
	case physical.OG:
		return m.OGRowNS * rows
	case physical.SOG:
		// Parallel sort runs + merges; the OG pass stays serial.
		return m.Parallel(m.sortCost(rows, c.Opt.Sort), c.Opt.Parallel) + m.OGRowNS*rows
	case physical.BSG:
		return (m.BSRowLogNS*log2(groups) + 2) * rows
	default:
		return math.Inf(1)
	}
}

// Join implements Model.
func (m *Calibrated) Join(c physio.JoinChoice, build, probe, keyDistinct float64) float64 {
	emit := m.ProbeNS * probe
	switch c.Kind {
	case physical.HJ:
		perRow := m.SchemeNS[hashtable.Chained] + m.HashNS[c.Opt.Hash] + m.cachePenalty(keyDistinct)
		// Radix-partitioned build and chunked probe both parallelise.
		return m.Parallel(perRow*(build+probe), c.Opt.Parallel) + emit
	case physical.SPHJ:
		// Build stays serial (chain order is the output contract); only the
		// probe side fans out.
		return m.SPHRowNS*build + m.Parallel(m.SPHRowNS*probe, c.Opt.Parallel) + emit
	case physical.OJ:
		return m.OGRowNS*(build+probe) + emit
	case physical.SOJ:
		// Both argsorts parallelise; the merge pass stays serial.
		return m.Parallel(m.sortCost(build, c.Opt.Sort)+m.sortCost(probe, c.Opt.Sort), c.Opt.Parallel) +
			m.OGRowNS*(build+probe) + emit
	case physical.BSJ:
		return m.sortCost(build, c.Opt.Sort) + (m.BSRowLogNS*log2(keyDistinct)+2)*probe + emit
	default:
		return math.Inf(1)
	}
}
