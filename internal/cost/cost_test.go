package cost

import (
	"math"
	"testing"

	"dqo/internal/hashtable"
	"dqo/internal/physical"
	"dqo/internal/physio"
	"dqo/internal/sortx"
)

func groupChoice(k physical.GroupKind, opt physical.GroupOptions) physio.GroupChoice {
	return physio.GroupChoice{Kind: k, Opt: opt}
}

func joinChoice(k physical.JoinKind, opt physical.JoinOptions) physio.JoinChoice {
	return physio.JoinChoice{Kind: k, Opt: opt}
}

// TestPaperModelTable2 pins the model to the exact Table 2 formulas using
// the paper's own cardinalities: |R| = 20,000, |S| = 90,000, G = 20,000.
func TestPaperModelTable2(t *testing.T) {
	m := Paper{}
	const r, s, g = 20000, 90000, 20000
	l2r := math.Log2(r)
	l2s := math.Log2(s)
	l2g := math.Log2(g)

	groupCases := []struct {
		kind physical.GroupKind
		want float64
	}{
		{physical.HG, 4 * r},
		{physical.OG, r},
		{physical.SOG, r*l2r + r},
		{physical.SPHG, r},
		{physical.BSG, r * l2g},
	}
	for _, c := range groupCases {
		got := m.Group(groupChoice(c.kind, physical.GroupOptions{}), r, g)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Group %s = %g, want %g", c.kind, got, c.want)
		}
	}

	joinCases := []struct {
		kind physical.JoinKind
		want float64
	}{
		{physical.HJ, 4 * (r + s)},
		{physical.OJ, r + s},
		{physical.SOJ, r*l2r + s*l2s + r + s},
		{physical.SPHJ, r + s},
		{physical.BSJ, (r + s) * l2g},
	}
	for _, c := range joinCases {
		got := m.Join(joinChoice(c.kind, physical.JoinOptions{}), r, s, g)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Join %s = %g, want %g", c.kind, got, c.want)
		}
	}
}

func TestPaperSortEnforcerConsistency(t *testing.T) {
	// enforced sort + OG must price exactly like SOG (Table 2 is internally
	// consistent: SOG = sort + OG).
	m := Paper{}
	const r, g = 20000, 100
	sortPlusOG := m.SortBy(r, sortx.Radix) + m.Group(groupChoice(physical.OG, physical.GroupOptions{}), r, g)
	sog := m.Group(groupChoice(physical.SOG, physical.GroupOptions{}), r, g)
	if math.Abs(sortPlusOG-sog) > 1e-9 {
		t.Fatalf("sort+OG = %g, SOG = %g", sortPlusOG, sog)
	}
}

func TestPaperFigure5HandCalculation(t *testing.T) {
	// Reproduce the plan costs behind Figure 5's dense column with the
	// model alone (the optimiser test reproduces them via full DP).
	m := Paper{}
	const r, s, joinOut, g = 20000, 90000, 90000, 20000

	sphPlan := m.Join(joinChoice(physical.SPHJ, physical.JoinOptions{}), r, s, r) +
		m.Group(groupChoice(physical.SPHG, physical.GroupOptions{}), joinOut, g)
	if sphPlan != 200000 {
		t.Fatalf("SPHJ+SPHG = %g, want 200000", sphPlan)
	}
	hashPlan := m.Join(joinChoice(physical.HJ, physical.JoinOptions{}), r, s, r) +
		m.Group(groupChoice(physical.HG, physical.GroupOptions{}), joinOut, g)
	if hashPlan != 800000 {
		t.Fatalf("HJ+HG = %g, want 800000", hashPlan)
	}
	if hashPlan/sphPlan != 4 {
		t.Fatalf("improvement factor = %g, want 4 (paper Figure 5, unsorted dense)", hashPlan/sphPlan)
	}
	orderPlan := m.Join(joinChoice(physical.OJ, physical.JoinOptions{}), r, s, r) +
		m.Group(groupChoice(physical.OG, physical.GroupOptions{}), joinOut, g)
	if orderPlan != 200000 {
		t.Fatalf("OJ+OG = %g, want 200000 (ties SPH: Figure 5's 1x sorted row)", orderPlan)
	}
}

func TestPaperScanFree(t *testing.T) {
	m := Paper{}
	if m.Scan(1e9) != 0 {
		t.Fatal("paper model must not charge scans")
	}
	if m.Filter(90) != 90 {
		t.Fatal("paper filter should cost one pass")
	}
}

func TestLog2Guards(t *testing.T) {
	if log2(0) != 0 || log2(1) != 0 {
		t.Fatal("log2 must clamp below 2")
	}
	if log2(8) != 3 {
		t.Fatal("log2(8) != 3")
	}
}

func TestUnknownKindsAreInfinite(t *testing.T) {
	for _, m := range []Model{Paper{}, NewCalibrated()} {
		if !math.IsInf(m.Group(groupChoice(physical.GroupKind(99), physical.GroupOptions{}), 10, 1), 1) {
			t.Fatalf("%s: unknown group kind not infinite", m.Name())
		}
		if !math.IsInf(m.Join(joinChoice(physical.JoinKind(99), physical.JoinOptions{}), 10, 10, 1), 1) {
			t.Fatalf("%s: unknown join kind not infinite", m.Name())
		}
	}
}

func TestCalibratedDiscriminatesSchemes(t *testing.T) {
	m := NewCalibrated()
	const rows, groups = 1e6, 100
	// Fitted to the A1 ablation: the flat-arena chained table is the
	// cheapest insert path on this class of hardware.
	chained := m.Group(groupChoice(physical.HG, physical.GroupOptions{Scheme: hashtable.Chained}), rows, groups)
	linear := m.Group(groupChoice(physical.HG, physical.GroupOptions{Scheme: hashtable.LinearProbe}), rows, groups)
	robin := m.Group(groupChoice(physical.HG, physical.GroupOptions{Scheme: hashtable.RobinHood}), rows, groups)
	if chained >= linear || linear >= robin {
		t.Fatalf("calibrated scheme ordering wrong: chained %g, linear %g, robinhood %g", chained, linear, robin)
	}
	murmur := m.Group(groupChoice(physical.HG, physical.GroupOptions{Hash: hashtable.Murmur3Fin}), rows, groups)
	fib := m.Group(groupChoice(physical.HG, physical.GroupOptions{Hash: hashtable.Fibonacci}), rows, groups)
	if fib >= murmur {
		t.Fatal("calibrated model cannot discriminate hash functions")
	}
}

func TestCalibratedCachePenaltyGrowsWithGroups(t *testing.T) {
	m := NewCalibrated()
	const rows = 1e7
	small := m.Group(groupChoice(physical.HG, physical.GroupOptions{}), rows, 100)
	large := m.Group(groupChoice(physical.HG, physical.GroupOptions{}), rows, 1e6)
	if large <= small {
		t.Fatal("HG cost must grow with group count (cache model)")
	}
	// SPHG is flat in group count.
	s1 := m.Group(groupChoice(physical.SPHG, physical.GroupOptions{}), rows, 100)
	s2 := m.Group(groupChoice(physical.SPHG, physical.GroupOptions{}), rows, 1e6)
	if s1 != s2 {
		t.Fatal("SPHG cost must be independent of group count")
	}
}

func TestCalibratedParallelSPHG(t *testing.T) {
	m := NewCalibrated()
	const rows, groups = 1e8, 1000
	serial := m.Group(groupChoice(physical.SPHG, physical.GroupOptions{}), rows, groups)
	parallel := m.Group(groupChoice(physical.SPHG, physical.GroupOptions{Parallel: 8}), rows, groups)
	if parallel >= serial {
		t.Fatal("parallel SPHG should win on huge inputs")
	}
	// On tiny inputs the fork overhead dominates.
	serialTiny := m.Group(groupChoice(physical.SPHG, physical.GroupOptions{}), 1000, 10)
	parallelTiny := m.Group(groupChoice(physical.SPHG, physical.GroupOptions{Parallel: 8}), 1000, 10)
	if parallelTiny <= serialTiny {
		t.Fatal("parallel SPHG should lose on tiny inputs")
	}
}

func TestCalibratedSortKinds(t *testing.T) {
	m := NewCalibrated()
	const rows = 1e8
	radix := m.SortBy(rows, sortx.Radix)
	cmp := m.SortBy(rows, sortx.Comparison)
	if radix >= cmp {
		t.Fatal("radix should beat comparison sort on huge uint32 inputs")
	}
	// On tiny inputs comparison wins (radix's fixed passes dominate; the
	// modelled crossover sits at a handful of rows).
	if m.SortBy(4, sortx.Comparison) >= m.SortBy(4, sortx.Radix) {
		t.Fatal("comparison sort should win on tiny inputs")
	}
}

func TestCalibratedBSGCrossover(t *testing.T) {
	// The paper's unsorted-sparse zoom: BSG beats HG for very few groups,
	// HG wins for many. The calibrated model must reproduce the crossover.
	m := NewCalibrated()
	const rows = 1e8
	hg := func(groups float64) float64 {
		return m.Group(groupChoice(physical.HG, physical.GroupOptions{}), rows, groups)
	}
	bsg := func(groups float64) float64 {
		return m.Group(groupChoice(physical.BSG, physical.GroupOptions{}), rows, groups)
	}
	if bsg(4) >= hg(4) {
		t.Fatalf("BSG should win at 4 groups: BSG=%g HG=%g", bsg(4), hg(4))
	}
	if bsg(40000) <= hg(40000) {
		t.Fatalf("HG should win at 40000 groups: BSG=%g HG=%g", bsg(40000), hg(40000))
	}
}

func TestModelNames(t *testing.T) {
	if (Paper{}).Name() != "paper" || NewCalibrated().Name() != "calibrated" {
		t.Fatal("model names wrong")
	}
}

func TestMeasureProducesUsableModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	m := Measure(1 << 17)
	for _, s := range hashtable.Schemes() {
		if m.SchemeNS[s] <= 0 {
			t.Fatalf("scheme %s coefficient %g", s, m.SchemeNS[s])
		}
	}
	for _, f := range hashtable.Funcs() {
		if m.HashNS[f] < 0 {
			t.Fatalf("hash %s coefficient %g", f, m.HashNS[f])
		}
	}
	if m.RadixRowNS <= 0 || m.CmpRowNS <= 0 || m.SPHRowNS <= 0 || m.OGRowNS <= 0 || m.BSRowLogNS <= 0 {
		t.Fatalf("non-positive kernel coefficients: %+v", m)
	}
	// The fitted model must still price real workloads finitely and keep
	// the structural facts every machine shares: OG is cheaper per row than
	// any hash scheme, and SPH is cheaper than hashing.
	const rows, groups = 1e7, 1e4
	og := m.Group(groupChoice(physical.OG, physical.GroupOptions{}), rows, groups)
	sph := m.Group(groupChoice(physical.SPHG, physical.GroupOptions{}), rows, groups)
	hg := m.Group(groupChoice(physical.HG, physical.GroupOptions{}), rows, groups)
	if !(og < hg && sph < hg) {
		t.Fatalf("fitted model lost structure: OG=%g SPHG=%g HG=%g", og, sph, hg)
	}
	if math.IsInf(m.Join(joinChoice(physical.SOJ, physical.JoinOptions{}), rows, rows, groups), 0) {
		t.Fatal("fitted model prices SOJ as infinite")
	}
}
