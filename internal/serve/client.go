package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a thin HTTP client against a dqoserve server, speaking the wire
// types in this package. It is used by dqoshell's \connect mode, the serve
// tests, and the benchmark harness. A Client is safe for concurrent use;
// the session handle, once set by NewSession, is read-only.
type Client struct {
	base    string
	hc      *http.Client
	session string
}

// RemoteError is a non-2xx response decoded into the error envelope.
// Dispatch on Kind (the stable taxonomy label), not on the message.
type RemoteError struct {
	Status int    // HTTP status code
	Kind   string // one of the Kind* constants
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server: %s (%s, HTTP %d)", e.Msg, e.Kind, e.Status)
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:8080"). The optional http.Client overrides transport
// behaviour; nil uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Session returns the client's session handle ("" before NewSession).
func (c *Client) Session() string { return c.session }

// NewSession opens a server-side session under the tenant label and pins it
// to this client; subsequent Prepare/Execute calls run inside it.
func (c *Client) NewSession(ctx context.Context, tenant string) error {
	var resp SessionResponse
	if err := c.post(ctx, "/session", SessionRequest{Tenant: tenant}, &resp); err != nil {
		return err
	}
	c.session = resp.Session
	return nil
}

// CloseSession releases the client's session server-side.
func (c *Client) CloseSession(ctx context.Context) error {
	if c.session == "" {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/session/"+c.session, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	c.session = ""
	return nil
}

// Query runs a one-shot query. mode "" selects the server default; args
// bind positional "?" parameters.
func (c *Client) Query(ctx context.Context, mode, sql string, args ...any) (*QueryResponse, error) {
	var resp QueryResponse
	err := c.post(ctx, "/query", QueryRequest{
		SQL: sql, Mode: mode, Args: args, Session: c.session,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Prepare registers a statement in the client's session (NewSession first)
// and returns its handle.
func (c *Client) Prepare(ctx context.Context, mode, sql string) (*PrepareResponse, error) {
	var resp PrepareResponse
	err := c.post(ctx, "/prepare", PrepareRequest{
		Session: c.session, SQL: sql, Mode: mode,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Execute runs a prepared statement by handle with one set of arguments.
func (c *Client) Execute(ctx context.Context, stmt string, args ...any) (*QueryResponse, error) {
	var resp QueryResponse
	err := c.post(ctx, "/execute", ExecuteRequest{
		Session: c.session, Stmt: stmt, Args: args,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the server's Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return "", decodeError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// post sends one JSON request and decodes the response into out.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("response body: %w", err)
	}
	return nil
}

// decodeError turns a non-2xx response into a *RemoteError.
func decodeError(resp *http.Response) error {
	var e ErrorResponse
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(body, &e); err != nil || e.Kind == "" {
		return &RemoteError{Status: resp.StatusCode, Kind: KindInternal,
			Msg: strings.TrimSpace(string(body))}
	}
	return &RemoteError{Status: resp.StatusCode, Kind: e.Kind, Msg: e.Error}
}
