package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"dqo"
)

// session is one client's server-side state: a tenant label for admission,
// a bounded map of prepared statements, and a TTL lease refreshed by every
// touch. Statement handles are stable for the session's lifetime; preparing
// the same shape twice returns the existing handle.
type session struct {
	id     string
	tenant string

	mu      sync.Mutex
	stmts   map[string]*dqo.Stmt // by handle
	byFp    map[string]string    // statement fingerprint -> handle (dedup)
	nextID  int
	expires time.Time
}

// put registers a prepared statement, deduplicating by fingerprint, and
// returns its handle. It fails once the per-session statement cap is hit.
func (s *session) put(st *dqo.Stmt, maxStmts int) (string, error) {
	fp := st.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.byFp[fp]; ok {
		return h, nil
	}
	if len(s.stmts) >= maxStmts {
		return "", fmt.Errorf("session holds %d prepared statements (the limit)", len(s.stmts))
	}
	s.nextID++
	h := fmt.Sprintf("s%d", s.nextID)
	s.stmts[h] = st
	s.byFp[fp] = h
	return h, nil
}

// get fetches a prepared statement by handle.
func (s *session) get(handle string) (*dqo.Stmt, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stmts[handle]
	return st, ok
}

func (s *session) stmtCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stmts)
}

// sessionTable is the bounded, TTL-expired session registry. Expired
// sessions are reaped lazily on every create/touch — no janitor goroutine,
// so an idle server holds no timers and tests need no clock control.
type sessionTable struct {
	mu       sync.Mutex
	sessions map[string]*session
	ttl      time.Duration
	max      int
	maxStmts int
	now      func() time.Time // test seam; time.Now in production
}

func newSessionTable(ttl time.Duration, max, maxStmts int) *sessionTable {
	return &sessionTable{
		sessions: make(map[string]*session),
		ttl:      ttl,
		max:      max,
		maxStmts: maxStmts,
		now:      time.Now,
	}
}

// create mints a new session under the tenant label. It fails when the
// table is full even after reaping expired sessions — session slots are a
// resource the server sheds like any other.
func (t *sessionTable) create(tenant string) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reapLocked()
	if len(t.sessions) >= t.max {
		return nil, fmt.Errorf("session table full (%d live sessions)", len(t.sessions))
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil, fmt.Errorf("session id: %w", err)
	}
	s := &session{
		id:      hex.EncodeToString(buf[:]),
		tenant:  tenant,
		stmts:   make(map[string]*dqo.Stmt),
		byFp:    make(map[string]string),
		expires: t.now().Add(t.ttl),
	}
	t.sessions[s.id] = s
	return s, nil
}

// get fetches a live session and renews its lease. Expired sessions are
// indistinguishable from unknown ones.
func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return nil, false
	}
	now := t.now()
	if now.After(s.expires) {
		delete(t.sessions, id)
		return nil, false
	}
	s.expires = now.Add(t.ttl)
	return s, true
}

// drop removes a session (explicit close).
func (t *sessionTable) drop(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.sessions[id]
	delete(t.sessions, id)
	return ok
}

// counts reports live sessions and prepared statements across them,
// reaping expired sessions first.
func (t *sessionTable) counts() (sessions, stmts int) {
	t.mu.Lock()
	live := make([]*session, 0, len(t.sessions))
	t.reapLocked()
	for _, s := range t.sessions {
		live = append(live, s)
	}
	sessions = len(live)
	t.mu.Unlock()
	// Statement counts take per-session locks; do it outside the table lock.
	for _, s := range live {
		stmts += s.stmtCount()
	}
	return sessions, stmts
}

// reapLocked deletes expired sessions. Callers hold t.mu.
func (t *sessionTable) reapLocked() {
	now := t.now()
	for id, s := range t.sessions {
		if now.After(s.expires) {
			delete(t.sessions, id)
		}
	}
}
