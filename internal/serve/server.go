package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"dqo"
	"dqo/internal/govern"
	"dqo/internal/obs"
)

// Config shapes a Server. The zero value of every field selects a sensible
// default; only DB is required.
type Config struct {
	DB *dqo.DB

	// DefaultMode optimises queries whose request omits a mode
	// (default ModeDQOCalibrated — the engine's best tier).
	DefaultMode dqo.Mode
	// ModeSet marks DefaultMode as explicitly chosen, so ModeSQO (the zero
	// Mode) can be configured.
	ModeSet bool

	// MaxActive bounds concurrently executing queries (0 = GOMAXPROCS);
	// MaxQueue bounds how many more wait for a slot (0 = 4x MaxActive,
	// negative = no queue at all). Beyond both, requests shed immediately
	// with HTTP 429 — the serving layer degrades by queueing first and
	// shedding second, never by accepting unbounded work.
	MaxActive int
	MaxQueue  int

	// TenantActive/TenantQueue shape the per-tenant gates layered inside
	// the global one (0 = no per-tenant gating). A tenant saturating its
	// own slots queues and sheds without starving other tenants.
	TenantActive int
	TenantQueue  int

	// SessionTTL expires idle sessions (default 5m); MaxSessions bounds the
	// session table (default 1024); MaxStmts bounds prepared statements per
	// session (default 64).
	SessionTTL  time.Duration
	MaxSessions int
	MaxStmts    int

	// MemPerQuery caps each query's working memory in bytes (0 = unlimited),
	// applied as WithMemoryLimit on every execution.
	MemPerQuery int64

	// DefaultTimeout bounds requests that set no timeout_ms (default 30s);
	// MaxTimeout clamps requested timeouts (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// MaxRows truncates result streaming after this many rows (0 =
	// unlimited). The query still runs to completion; only the response body
	// is bounded.
	MaxRows int
}

func (c Config) withDefaults() Config {
	if !c.ModeSet {
		c.DefaultMode = dqo.ModeDQOCalibrated
	}
	if c.MaxActive <= 0 {
		c.MaxActive = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 4 * c.MaxActive
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the HTTP serving layer over one DB. Create with New, mount via
// Handler, and call Drain before shutting the listener down so /healthz
// flips to 503 while in-flight queries finish.
type Server struct {
	cfg      Config
	db       *dqo.DB
	gate     *govern.Gate
	tenants  *govern.TenantGates
	sessions *sessionTable
	metrics  *obs.HTTPCollector
	mux      *http.ServeMux
	draining atomic.Bool
}

// New builds a Server over cfg.DB. It panics on a nil DB — a server without
// an engine is a programming error, not a runtime condition.
func New(cfg Config) *Server {
	if cfg.DB == nil {
		panic("serve: Config.DB is nil")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		gate:     govern.NewGate(cfg.MaxActive, cfg.MaxQueue),
		tenants:  govern.NewTenantGates(cfg.TenantActive, cfg.TenantQueue),
		sessions: newSessionTable(cfg.SessionTTL, cfg.MaxSessions, cfg.MaxStmts),
		metrics:  obs.NewHTTPCollector(),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /query", s.instrument("/query", s.handleQuery))
	s.mux.HandleFunc("POST /session", s.instrument("/session", s.handleSessionCreate))
	s.mux.HandleFunc("DELETE /session/{id}", s.instrument("/session", s.handleSessionDelete))
	s.mux.HandleFunc("POST /prepare", s.instrument("/prepare", s.handlePrepare))
	s.mux.HandleFunc("POST /execute", s.instrument("/execute", s.handleExecute))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	return s
}

// Handler returns the server's route table, ready to mount on an
// http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain flips the server into shutdown mode: /healthz reports 503 so load
// balancers stop routing here, new queries are refused with KindDraining,
// and requests already executing run to completion (the caller then uses
// http.Server.Shutdown to wait for them).
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter captures the final status code for the request metric.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-endpoint request metric.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.metrics.RecordRequest(endpoint, sw.status, time.Since(start))
		if s.draining.Load() && sw.status < 300 {
			s.metrics.RecordDrained()
		}
	}
}

// writeError emits the typed error envelope.
func writeError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Kind: kind, Error: fmt.Sprintf(format, args...)})
}

// writeEngineError maps an engine error onto HTTP status + kind. Untyped
// errors are client errors (parse, bind, argument mismatch): everything the
// engine itself can get wrong is typed ErrInternal.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dqo.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, KindQueueFull, "%v", err)
	case errors.Is(err, dqo.ErrTimeout):
		writeError(w, http.StatusGatewayTimeout, KindTimeout, "%v", err)
	case errors.Is(err, dqo.ErrCancelled):
		writeError(w, http.StatusRequestTimeout, KindCancelled, "%v", err)
	case errors.Is(err, dqo.ErrMemoryBudgetExceeded):
		writeError(w, http.StatusRequestEntityTooLarge, KindMemBudget, "%v", err)
	case errors.Is(err, dqo.ErrSpillLimitExceeded):
		writeError(w, http.StatusRequestEntityTooLarge, KindSpillBudget, "%v", err)
	case errors.Is(err, dqo.ErrInternal):
		writeError(w, http.StatusInternalServerError, KindInternal, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, KindInvalid, "%v", err)
	}
}

// decode parses a JSON request body with numbers preserved (see
// ConvertArgs) and unknown fields rejected.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// admit passes the request through the tenant's gate, then the global one.
// Tenant-first ordering is the isolation boundary: a request waiting for a
// global slot holds only its own tenant's slot, so a noisy tenant that
// saturates its quota queues (then sheds) against itself without pinning
// global capacity the other tenants need. The returned release frees both
// slots.
func (s *Server) admit(r *http.Request, tenant string) (release func(), err error) {
	relTenant, err := s.tenants.Enter(r.Context(), tenant)
	if err != nil {
		return nil, err
	}
	relGlobal, err := s.gate.Enter(r.Context())
	if err != nil {
		relTenant()
		return nil, err
	}
	return func() { relGlobal(); relTenant() }, nil
}

// timeout resolves a request's execution deadline from timeout_ms.
func (s *Server) timeout(millis int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if millis > 0 {
		d = time.Duration(millis) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// queryOptions builds the per-execution option set.
func (s *Server) queryOptions(timeoutMillis int64) []dqo.QueryOption {
	opts := []dqo.QueryOption{dqo.WithTimeout(s.timeout(timeoutMillis))}
	if s.cfg.MemPerQuery > 0 {
		opts = append(opts, dqo.WithMemoryLimit(s.cfg.MemPerQuery))
	}
	return opts
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, KindDraining, "server is draining")
		return
	}
	var req QueryRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, KindInvalid, "%v", err)
		return
	}
	mode, err := ParseMode(req.Mode, s.cfg.DefaultMode)
	if err != nil {
		writeError(w, http.StatusBadRequest, KindInvalid, "%v", err)
		return
	}
	tenant := ""
	if req.Session != "" {
		sess, ok := s.sessions.get(req.Session)
		if !ok {
			writeError(w, http.StatusNotFound, KindNotFound, "unknown or expired session %q", req.Session)
			return
		}
		tenant = sess.tenant
	}
	release, err := s.admit(r, tenant)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	defer release()

	start := time.Now()
	var res *dqo.Result
	if len(req.Args) > 0 {
		// Parameterised one-shot: prepare transiently so the execution rides
		// the plan-template cache exactly like /prepare + /execute would.
		args, cerr := ConvertArgs(req.Args)
		if cerr != nil {
			writeError(w, http.StatusBadRequest, KindInvalid, "%v", cerr)
			return
		}
		stmt, perr := s.db.Prepare(mode, req.SQL)
		if perr != nil {
			writeEngineError(w, perr)
			return
		}
		res, err = stmt.QueryWith(r.Context(), args, s.queryOptions(req.TimeoutMillis)...)
	} else {
		res, err = s.db.Query(r.Context(), mode, req.SQL, s.queryOptions(req.TimeoutMillis)...)
	}
	if err != nil {
		writeEngineError(w, err)
		return
	}
	s.writeResult(w, res, time.Since(start))
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, KindDraining, "server is draining")
		return
	}
	// An empty body is a valid anonymous-session request.
	var req SessionRequest
	if r.ContentLength != 0 {
		if err := decode(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, KindInvalid, "%v", err)
			return
		}
	}
	sess, err := s.sessions.create(req.Tenant)
	if err != nil {
		writeError(w, http.StatusTooManyRequests, KindQueueFull, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(SessionResponse{
		Session:    sess.id,
		TTLSeconds: int64(s.cfg.SessionTTL / time.Second),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.drop(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, KindNotFound, "unknown or expired session %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, KindDraining, "server is draining")
		return
	}
	var req PrepareRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, KindInvalid, "%v", err)
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusNotFound, KindNotFound, "unknown or expired session %q", req.Session)
		return
	}
	mode, err := ParseMode(req.Mode, s.cfg.DefaultMode)
	if err != nil {
		writeError(w, http.StatusBadRequest, KindInvalid, "%v", err)
		return
	}
	stmt, err := s.db.Prepare(mode, req.SQL)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	handle, err := sess.put(stmt, s.cfg.MaxStmts)
	if err != nil {
		writeError(w, http.StatusTooManyRequests, KindQueueFull, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(PrepareResponse{
		Stmt:        handle,
		NumParams:   stmt.NumParams(),
		Fingerprint: stmt.Fingerprint(),
	})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, KindDraining, "server is draining")
		return
	}
	var req ExecuteRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, KindInvalid, "%v", err)
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusNotFound, KindNotFound, "unknown or expired session %q", req.Session)
		return
	}
	stmt, ok := sess.get(req.Stmt)
	if !ok {
		writeError(w, http.StatusNotFound, KindNotFound, "unknown statement %q in session", req.Stmt)
		return
	}
	args, err := ConvertArgs(req.Args)
	if err != nil {
		writeError(w, http.StatusBadRequest, KindInvalid, "%v", err)
		return
	}
	release, err := s.admit(r, sess.tenant)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	defer release()

	start := time.Now()
	res, err := stmt.QueryWith(r.Context(), args, s.queryOptions(req.TimeoutMillis)...)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	s.writeResult(w, res, time.Since(start))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.db.WriteMetrics(w); err != nil {
		return
	}
	sessions, stmts := s.sessions.counts()
	_ = s.metrics.WriteProm(w, obs.HTTPGauges{
		Sessions:      sessions,
		PreparedStmts: stmts,
		Running:       s.gate.Running(),
		Queued:        s.gate.Queued(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, KindDraining, "server is draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// writeResult streams the result relation as the QueryResponse JSON shape:
// the envelope is hand-written so rows go out one at a time through the
// Result's Next/Scan cursor instead of materialising a row-major copy.
func (s *Server) writeResult(w http.ResponseWriter, res *dqo.Result, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	cols := res.Columns()
	if cols == nil {
		cols = []string{}
	}
	head, err := json.Marshal(cols)
	if err != nil {
		writeError(w, http.StatusInternalServerError, KindInternal, "%v", err)
		return
	}
	fmt.Fprintf(w, `{"columns":%s,"rows":[`, head)
	cells := make([]any, len(cols))
	dests := make([]any, len(cols))
	for i := range cells {
		dests[i] = &cells[i]
	}
	n := 0
	for res.Next() {
		if s.cfg.MaxRows > 0 && n >= s.cfg.MaxRows {
			break
		}
		if err := res.Scan(dests...); err != nil {
			// The envelope is already on the wire; truncate the stream. The
			// client's JSON decoder reports the malformed body.
			fmt.Fprintf(w, `],"error":%q}`, err.Error())
			return
		}
		row, err := json.Marshal(cells)
		if err != nil {
			fmt.Fprintf(w, `],"error":%q}`, err.Error())
			return
		}
		if n > 0 {
			fmt.Fprint(w, ",")
		}
		w.Write(row)
		n++
	}
	fmt.Fprintf(w, `],"row_count":%d,"elapsed_ms":%g}`, res.NumRows(),
		float64(elapsed.Microseconds())/1000)
}
