package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dqo"
	"dqo/internal/datagen"
)

// testEngine builds a DB with the paper's R/S pair, sized for fast tests,
// with the plan cache on (the server's production configuration).
func testEngine(t testing.TB, rRows, sRows int) *dqo.DB {
	t.Helper()
	cfg := datagen.FKConfig{RRows: rRows, SRows: sRows, AGroups: 100, Dense: true}
	r, s := datagen.FKPair(42, cfg)
	rt := dqo.NewTableBuilder("R").
		Uint32("ID", r.MustColumn("ID").Uint32s()).
		Uint32("A", r.MustColumn("A").Uint32s()).
		MustBuild()
	st := dqo.NewTableBuilder("S").
		Uint32("R_ID", s.MustColumn("R_ID").Uint32s()).
		Int64("M", s.MustColumn("M").Int64s()).
		MustBuild()
	db := dqo.Open()
	if err := db.Register(rt); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(st); err != nil {
		t.Fatal(err)
	}
	db.EnablePlanCache(true)
	return db
}

// testServer wires a Server over a test engine behind an httptest listener.
func testServer(t testing.TB, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = testEngine(t, 2000, 9000)
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, NewClient(hs.URL, hs.Client())
}

const joinSQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A ORDER BY R.A"

func TestQueryEndToEnd(t *testing.T) {
	_, c := testServer(t, Config{})
	resp, err := c.Query(context.Background(), "dqo", joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Columns) != 2 {
		t.Fatalf("columns = %v", resp.Columns)
	}
	if resp.RowCount != 100 || len(resp.Rows) != 100 {
		t.Fatalf("rows = %d (declared %d), want 100", len(resp.Rows), resp.RowCount)
	}
	if resp.ElapsedMillis <= 0 {
		t.Fatalf("elapsed_ms = %g", resp.ElapsedMillis)
	}
}

func TestQueryWithArgsRidesPlanCache(t *testing.T) {
	db := testEngine(t, 2000, 9000)
	_, c := testServer(t, Config{DB: db})
	const q = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID WHERE R.A < ? GROUP BY R.A"
	for i, arg := range []any{10, 20, 30} {
		resp, err := c.Query(context.Background(), "cal", q, arg)
		if err != nil {
			t.Fatalf("arg %v: %v", arg, err)
		}
		if want := arg.(int); resp.RowCount != want {
			t.Fatalf("arg %v: %d groups, want %d", arg, resp.RowCount, want)
		}
		if i == 0 {
			continue
		}
	}
	hits, misses := db.PlanCacheStats()
	if misses != 1 || hits != 2 {
		t.Fatalf("plan cache = %d hits / %d misses, want 2/1: repeats of one shape must hit", hits, misses)
	}
}

func TestQueryErrorsAreTyped(t *testing.T) {
	_, c := testServer(t, Config{})
	cases := []struct {
		sql    string
		status int
		kind   string
	}{
		{"SELECT nope FROM R", 400, KindInvalid},
		{"garbage", 400, KindInvalid},
	}
	for _, tc := range cases {
		_, err := c.Query(context.Background(), "", tc.sql)
		var re *RemoteError
		if !errors.As(err, &re) || re.Status != tc.status || re.Kind != tc.kind {
			t.Fatalf("%q: err = %v, want HTTP %d kind %s", tc.sql, err, tc.status, tc.kind)
		}
	}
	if _, err := c.Query(context.Background(), "warp", "SELECT ID FROM R"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestSessionLifecycleAndExpiry(t *testing.T) {
	srv, c := testServer(t, Config{SessionTTL: time.Minute})

	// Install a controllable clock under the session table.
	now := time.Now()
	var mu sync.Mutex
	srv.sessions.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	if err := c.NewSession(context.Background(), "team-a"); err != nil {
		t.Fatal(err)
	}
	if c.Session() == "" {
		t.Fatal("no session handle")
	}
	if _, err := c.Prepare(context.Background(), "", "SELECT ID FROM R WHERE A = ?"); err != nil {
		t.Fatal(err)
	}

	// Touching the session inside the TTL renews the lease...
	advance(50 * time.Second)
	if _, err := c.Execute(context.Background(), "s1", 5); err != nil {
		t.Fatalf("execute within TTL: %v", err)
	}
	advance(50 * time.Second)
	if _, err := c.Execute(context.Background(), "s1", 5); err != nil {
		t.Fatalf("renewed lease expired early: %v", err)
	}

	// ...and an idle session past the TTL is gone, statements included.
	advance(2 * time.Minute)
	_, err := c.Execute(context.Background(), "s1", 5)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 404 || re.Kind != KindNotFound {
		t.Fatalf("expired session: err = %v, want 404 %s", err, KindNotFound)
	}
	if sessions, _ := srv.sessions.counts(); sessions != 0 {
		t.Fatalf("%d sessions alive after expiry", sessions)
	}
}

func TestSessionTableBounded(t *testing.T) {
	_, c := testServer(t, Config{MaxSessions: 3})
	for i := 0; i < 3; i++ {
		if err := c.NewSession(context.Background(), ""); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	err := c.NewSession(context.Background(), "")
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 429 || re.Kind != KindQueueFull {
		t.Fatalf("4th session: err = %v, want 429 %s", err, KindQueueFull)
	}
}

func TestSessionClose(t *testing.T) {
	_, c := testServer(t, Config{})
	if err := c.NewSession(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseSession(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Closing again (no session pinned) is a no-op; deleting an unknown id
	// 404s.
	if err := c.CloseSession(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPrepareExecuteOneSession(t *testing.T) {
	db := testEngine(t, 2000, 9000)
	_, c := testServer(t, Config{DB: db, MaxActive: 16, MaxQueue: 1024})
	if err := c.NewSession(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID WHERE R.A < ? GROUP BY R.A"
	const workers = 8
	handles := make([]string, workers)
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 5; i++ {
				// Every worker re-prepares the same statement: the session
				// must dedup by fingerprint rather than fill up.
				pr, err := c.Prepare(context.Background(), "cal", q)
				if err != nil {
					errc <- fmt.Errorf("worker %d prepare: %w", w, err)
					return
				}
				handles[w] = pr.Stmt
				arg := 5 + (w+i)%20
				resp, err := c.Execute(context.Background(), pr.Stmt, arg)
				if err != nil {
					errc <- fmt.Errorf("worker %d execute(%d): %w", w, arg, err)
					return
				}
				if resp.RowCount != arg {
					errc <- fmt.Errorf("worker %d: execute(%d) returned %d groups", w, arg, resp.RowCount)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range handles[1:] {
		if h != handles[0] {
			t.Fatalf("same statement got distinct handles %v", handles)
		}
	}
	if hits, misses := db.PlanCacheStats(); misses != 1 || hits != workers*5-1 {
		t.Fatalf("plan cache = %d hits / %d misses, want %d/1", hits, misses, workers*5-1)
	}
}

func TestShedUnderLoad(t *testing.T) {
	srv, c := testServer(t, Config{MaxActive: 1, MaxQueue: -1})
	// Occupy the single slot directly, then any query must shed with a
	// typed 429 rather than queue or block.
	release, err := srv.gate.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(context.Background(), "", "SELECT ID FROM R LIMIT 1")
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 429 || re.Kind != KindQueueFull {
		release()
		t.Fatalf("err = %v, want 429 %s", err, KindQueueFull)
	}
	release()
	if _, err := c.Query(context.Background(), "", "SELECT ID FROM R LIMIT 1"); err != nil {
		t.Fatalf("query after release: %v", err)
	}
	metrics, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "dqoserve_shed_total 1") {
		t.Fatalf("shed not counted:\n%s", metrics)
	}
}

func TestTenantGateIsolation(t *testing.T) {
	srv, c := testServer(t, Config{MaxActive: 8, MaxQueue: 8, TenantActive: 1, TenantQueue: -1})
	if err := c.NewSession(context.Background(), "greedy-tenant"); err != nil {
		t.Fatal(err)
	}
	// Saturate greedy-tenant's single slot.
	release, err := srv.tenants.Enter(context.Background(), "greedy-tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Its own next query sheds...
	_, err = c.Query(context.Background(), "", "SELECT ID FROM R LIMIT 1")
	var re *RemoteError
	if !errors.As(err, &re) || re.Kind != KindQueueFull {
		t.Fatalf("saturated tenant: err = %v, want %s", err, KindQueueFull)
	}
	// ...while another tenant sails through.
	other := NewClient(c.base, c.hc)
	if err := other.NewSession(context.Background(), "polite-tenant"); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Query(context.Background(), "", "SELECT ID FROM R LIMIT 1"); err != nil {
		t.Fatalf("unrelated tenant starved: %v", err)
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, c := testServer(t, Config{})
	// Hold an admission slot to simulate an in-flight query, then drain.
	release, err := srv.gate.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	if c.Healthy(context.Background()) {
		t.Fatal("healthz still 200 while draining")
	}
	_, err = c.Query(context.Background(), "", "SELECT ID FROM R LIMIT 1")
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 503 || re.Kind != KindDraining {
		t.Fatalf("query while draining: err = %v, want 503 %s", err, KindDraining)
	}
	// The in-flight query's slot is still valid: releasing it models the
	// query finishing cleanly during the drain window.
	release()
	if got := srv.gate.Running(); got != 0 {
		t.Fatalf("%d queries still running after drain", got)
	}
}

func TestDrainCompletesInFlightQueries(t *testing.T) {
	srv, c := testServer(t, Config{DB: testEngine(t, 20000, 90000)})
	// Start a real query, flip to draining while it runs, and check it
	// completes successfully: draining refuses new work, never kills old.
	type result struct {
		resp *QueryResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := c.Query(context.Background(), "dqo", joinSQL)
		done <- result{resp, err}
	}()
	// Wait for the query to take its slot (it may also finish first —
	// that's fine, the channel read below settles it).
	for i := 0; i < 1000 && srv.gate.Running() == 0; i++ {
		select {
		case r := <-done:
			done <- r
			i = 1000
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	srv.Drain()
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight query killed by drain: %v", r.err)
	}
	if r.resp.RowCount != 100 {
		t.Fatalf("in-flight query truncated: %d rows", r.resp.RowCount)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, c := testServer(t, Config{})
	if err := c.NewSession(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare(context.Background(), "", "SELECT ID FROM R WHERE A = ?"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "", "SELECT ID FROM R LIMIT 3"); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dqo_queries_total",         // engine exposition present
		"dqo_plan_cache_hits_total", // hit rate surfaced
		`dqoserve_requests_total{endpoint="/query",status="200"} 1`,
		`dqoserve_requests_total{endpoint="/prepare",status="200"} 1`,
		"dqoserve_sessions 1",
		"dqoserve_prepared_statements 1",
		"dqoserve_shed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestUnknownStatementAndSession(t *testing.T) {
	_, c := testServer(t, Config{})
	if err := c.NewSession(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	_, err := c.Execute(context.Background(), "s99", 1)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 404 || re.Kind != KindNotFound {
		t.Fatalf("unknown stmt: err = %v, want 404 %s", err, KindNotFound)
	}
	bad := NewClient(c.base, c.hc)
	bad.session = "deadbeef"
	if _, err := bad.Prepare(context.Background(), "", "SELECT ID FROM R"); err == nil {
		t.Fatal("prepare on bogus session accepted")
	}
}

func TestConvertArgs(t *testing.T) {
	got, err := ConvertArgs([]any{jsonNum("7"), jsonNum("2.5"), "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != int64(7) || got[1] != 2.5 || got[2] != "x" {
		t.Fatalf("got %#v", got)
	}
	if _, err := ConvertArgs([]any{true}); err == nil {
		t.Fatal("bool accepted")
	}
}

func TestParseMode(t *testing.T) {
	for wire, want := range map[string]dqo.Mode{
		"": dqo.ModeGreedy, "sqo": dqo.ModeSQO, "dqo": dqo.ModeDQO,
		"cal": dqo.ModeDQOCalibrated, "dqo-calibrated": dqo.ModeDQOCalibrated,
		"greedy": dqo.ModeGreedy,
	} {
		got, err := ParseMode(wire, dqo.ModeGreedy)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", wire, got, err, want)
		}
	}
	if _, err := ParseMode("warp", dqo.ModeDQO); err == nil {
		t.Fatal("bad mode accepted")
	}
}

// BenchmarkServeQuery measures the full HTTP round trip of a prepared
// repeat query — the serving layer's per-request overhead over the engine.
func BenchmarkServeQuery(b *testing.B) {
	db := testEngine(b, 2000, 9000)
	_, c := testServer(b, Config{DB: db, MaxQueue: 1 << 20})
	if err := c.NewSession(context.Background(), ""); err != nil {
		b.Fatal(err)
	}
	pr, err := c.Prepare(context.Background(), "cal", "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID WHERE R.A < ? GROUP BY R.A")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Execute(context.Background(), pr.Stmt, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// jsonNum builds a json.Number literal the way the request decoder would.
func jsonNum(s string) any { return json.Number(s) }
