// Package serve is the network serving layer over a dqo.DB: an HTTP/JSON
// front-end with sessions, server-side prepared statements riding the
// engine's parameterised plan cache, per-tenant admission control, and
// graceful degradation under load (bounded queue, typed shedding, request
// timeouts, drain-on-shutdown). The wire types in this file are shared by
// the server, the thin Client, and dqoshell's \connect mode.
package serve

import (
	"encoding/json"
	"fmt"
	"math"

	"dqo"
)

// QueryRequest is the body of POST /query: one-shot execution of a SQL
// statement. Args supply values for positional "?" parameters; a request
// with Args routes through the server's prepared-statement machinery (and
// therefore the plan-template cache) even without an explicit /prepare.
type QueryRequest struct {
	SQL  string `json:"sql"`
	Mode string `json:"mode,omitempty"` // sqo | dqo | cal | greedy; "" = server default
	Args []any  `json:"args,omitempty"`
	// Session is optional for /query; when set, the query is admitted under
	// the session's tenant gate and refreshes the session's TTL.
	Session string `json:"session,omitempty"`
	// TimeoutMillis bounds this request's execution; 0 uses the server
	// default, and values above the server maximum are clamped to it.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse is the body of a successful /query or /execute: the result
// relation in row-major JSON plus summary measurements. Rows is streamed by
// the server one row at a time — large results never materialise a second
// row-major copy server-side.
type QueryResponse struct {
	Columns       []string `json:"columns"`
	Rows          [][]any  `json:"rows"`
	RowCount      int      `json:"row_count"`
	ElapsedMillis float64  `json:"elapsed_ms"`
}

// SessionRequest is the body of POST /session.
type SessionRequest struct {
	// Tenant scopes the session under a per-tenant admission gate; sessions
	// with the same tenant share slots. "" shares the anonymous gate.
	Tenant string `json:"tenant,omitempty"`
}

// SessionResponse returns the new session's handle and lease.
type SessionResponse struct {
	Session    string `json:"session"`
	TTLSeconds int64  `json:"ttl_seconds"`
}

// PrepareRequest is the body of POST /prepare: parse and name-check a
// statement once inside a session, keeping it for repeated /execute calls.
type PrepareRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
	Mode    string `json:"mode,omitempty"`
}

// PrepareResponse returns the statement handle. Preparing the same
// statement shape (same fingerprint and mode) twice in one session returns
// the original handle rather than a duplicate.
type PrepareResponse struct {
	Stmt      string `json:"stmt"`
	NumParams int    `json:"num_params"`
	// Fingerprint is the statement's normalized shape — the plan-cache key
	// component its executions share with same-shape concrete queries.
	Fingerprint string `json:"fingerprint"`
}

// ExecuteRequest is the body of POST /execute: run a prepared statement
// with one set of arguments.
type ExecuteRequest struct {
	Session       string `json:"session"`
	Stmt          string `json:"stmt"`
	Args          []any  `json:"args,omitempty"`
	TimeoutMillis int64  `json:"timeout_ms,omitempty"`
}

// ErrorResponse is the body of every non-2xx response. Kind is a stable
// machine-readable label mirroring the engine's error taxonomy (see
// KindQueueFull and friends); Error is the human-readable detail.
type ErrorResponse struct {
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// Error kinds carried in ErrorResponse.Kind, one per taxonomy sentinel the
// serving layer distinguishes. Clients dispatch on these, never on message
// text.
const (
	KindInvalid     = "invalid_request" // malformed JSON, bad SQL, unknown names/args
	KindQueueFull   = "queue_full"      // shed by admission control (HTTP 429)
	KindTimeout     = "timeout"         // request deadline expired (HTTP 504)
	KindCancelled   = "cancelled"       // client went away mid-query (HTTP 499 internally, 408 on the wire)
	KindMemBudget   = "memory_budget"   // per-query memory budget exceeded (HTTP 413)
	KindSpillBudget = "spill_budget"    // spill-disk budget exceeded (HTTP 413)
	KindNotFound    = "not_found"       // unknown session or statement handle (HTTP 404)
	KindDraining    = "draining"        // server is shutting down (HTTP 503)
	KindInternal    = "internal"        // engine panic or serving-layer bug (HTTP 500)
)

// ParseMode maps a wire mode name onto the engine's Mode. The empty string
// selects the given default.
func ParseMode(s string, def dqo.Mode) (dqo.Mode, error) {
	switch s {
	case "":
		return def, nil
	case "sqo":
		return dqo.ModeSQO, nil
	case "dqo":
		return dqo.ModeDQO, nil
	case "cal", "dqo-calibrated":
		return dqo.ModeDQOCalibrated, nil
	case "greedy":
		return dqo.ModeGreedy, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want sqo, dqo, cal, or greedy)", s)
	}
}

// ConvertArgs normalises JSON-decoded argument values into the Go types the
// engine's parameter binder accepts. The request decoder must run with
// json.Decoder.UseNumber so numbers arrive as json.Number: integral numbers
// become int64, everything else float64 — a bare float64 decode would turn
// the integer 7 into 7.0 and break integer-column comparisons.
func ConvertArgs(args []any) ([]any, error) {
	out := make([]any, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case json.Number:
			if n, err := v.Int64(); err == nil {
				out[i] = n
				continue
			}
			f, err := v.Float64()
			if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
				return nil, fmt.Errorf("argument %d: unrepresentable number %q", i+1, v.String())
			}
			out[i] = f
		case string:
			out[i] = v
		default:
			return nil, fmt.Errorf("argument %d: unsupported type %T (want number or string)", i+1, a)
		}
	}
	return out, nil
}
