package dqo

import (
	"fmt"
	"strings"

	"dqo/internal/core"
	"dqo/internal/storage"
)

// Result is the output of a query: a result relation plus the plan that
// produced it.
type Result struct {
	rel  *storage.Relation
	plan *core.Result
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return r.rel.NumRows() }

// Columns returns the result column names in order.
func (r *Result) Columns() []string { return r.rel.ColumnNames() }

// EstimatedCost returns the optimiser's cost estimate for the executed plan.
func (r *Result) EstimatedCost() float64 { return r.plan.Best.Cost }

// PlanExplain renders the executed plan.
func (r *Result) PlanExplain() string { return r.plan.Best.Explain() }

// Uint32Column returns a uint32 result column by name.
func (r *Result) Uint32Column(name string) ([]uint32, error) {
	c, ok := r.rel.Column(name)
	if !ok {
		return nil, fmt.Errorf("dqo: result has no column %q", name)
	}
	if c.Kind() != storage.KindUint32 {
		return nil, fmt.Errorf("dqo: column %q is %s, not uint32", name, c.Kind())
	}
	return c.Uint32s(), nil
}

// Int64Column returns an int64 result column by name.
func (r *Result) Int64Column(name string) ([]int64, error) {
	c, ok := r.rel.Column(name)
	if !ok {
		return nil, fmt.Errorf("dqo: result has no column %q", name)
	}
	if c.Kind() != storage.KindInt64 {
		return nil, fmt.Errorf("dqo: column %q is %s, not int64", name, c.Kind())
	}
	return c.Int64s(), nil
}

// Float64Column returns a float64 result column by name.
func (r *Result) Float64Column(name string) ([]float64, error) {
	c, ok := r.rel.Column(name)
	if !ok {
		return nil, fmt.Errorf("dqo: result has no column %q", name)
	}
	if c.Kind() != storage.KindFloat64 {
		return nil, fmt.Errorf("dqo: column %q is %s, not float64", name, c.Kind())
	}
	return c.Float64s(), nil
}

// Row returns row i rendered as strings, one per column.
func (r *Result) Row(i int) []string {
	vals := r.rel.Row(i)
	out := make([]string, len(vals))
	for j, v := range vals {
		out[j] = v.String()
	}
	return out
}

// String renders the result as an aligned text table (all rows).
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, r.rel.NumCols())
	names := r.rel.ColumnNames()
	for j, n := range names {
		widths[j] = len(n)
	}
	rows := make([][]string, r.NumRows())
	for i := 0; i < r.NumRows(); i++ {
		rows[i] = r.Row(i)
		for j, v := range rows[i] {
			if len(v) > widths[j] {
				widths[j] = len(v)
			}
		}
	}
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			if j == len(vals)-1 {
				b.WriteString(v) // no trailing padding
				continue
			}
			fmt.Fprintf(&b, "%-*s", widths[j], v)
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", r.NumRows())
	return b.String()
}
