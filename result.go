package dqo

import (
	"fmt"
	"strings"
	"time"

	"dqo/internal/core"
	"dqo/internal/exec"
	"dqo/internal/obs"
	"dqo/internal/storage"
)

// Result is the output of a query: a result relation, the plan that
// produced it, and the per-operator execution profile. When a query fails
// mid-pipeline, Query returns a partial Result alongside the error: rel is
// nil, Err reports the failure, and Stats carries whatever the operators
// counted before the abort — the post-mortem view of how far the query got.
type Result struct {
	rel     *storage.Relation
	plan    *core.Result
	profile exec.Profile
	err     error
	trace   *obs.QueryTrace
	phases  phaseTimes
	memPeak int64 // budget high-water mark (0 when no budget was installed)
	replans []ReplanEvent

	cursor int // Next/Scan row cursor: rows consumed so far
}

// ReplanEvent records one mid-query re-planning decision taken at a
// pipeline-breaker boundary under WithReoptimize: which operator's estimate
// was off, by how much, and what was spliced in instead.
type ReplanEvent = core.ReplanEvent

// Replans returns the mid-query re-planning decisions taken during
// execution, in splice order. It is empty unless the query ran with
// WithReoptimize and at least one breaker's materialised input was far
// enough off-estimate to trigger a suffix re-plan.
func (r *Result) Replans() []ReplanEvent { return r.replans }

// Err reports the execution error of a partial result (nil for a
// successful query).
func (r *Result) Err() error { return r.err }

// Trace returns the query's span tree — the same trace delivered to the
// DB's tracer — or nil when tracing was disabled for this query.
func (r *Result) Trace() *QueryTrace { return r.trace }

// PeakBytes reports the query's measured memory high-water mark: the
// budget's peak when a memory limit was set, else the largest per-operator
// peak in the execution profile.
func (r *Result) PeakBytes() int64 { return resultPeakBytes(r) }

// SpilledBytes reports the total run-file bytes the query wrote to disk
// across all operators — 0 when nothing spilled, including spill-lowered
// plans whose input turned out to fit in memory.
func (r *Result) SpilledBytes() int64 {
	var n int64
	for _, s := range r.profile {
		n += s.SpillBytes
	}
	return n
}

// OpStat is one operator's measured execution profile: what actually
// happened at run time, as opposed to the optimiser's estimates. Depth is
// the operator's depth in the executed plan tree (0 = root).
type OpStat struct {
	Label     string
	Depth     int
	RowsIn    int64         // rows pulled from inputs
	RowsOut   int64         // rows emitted
	Batches   int64         // morsel batches emitted
	Wall      time.Duration // time in the operator, inclusive of inputs
	Self      time.Duration // Wall minus the inputs' Wall
	PeakBytes int64         // high-water estimate of bytes held
	DOP       int64         // effective degree of parallelism (1 = serial)
	Replans   int64         // mid-query re-planning splices taken at this operator

	// Spill accounting, nonzero only for operators that actually touched
	// disk (a spill-lowered breaker whose input fit in memory spills
	// nothing and reports zeros).
	SpillBytes  int64 // run-file bytes written by this operator
	SpillParts  int64 // run files / partitions written
	SpillPasses int64 // extra disk passes (merge rounds, re-partitionings)
}

// Stats returns the per-operator execution profile in pre-order (root
// operator first), measured by the morsel executor. It is the feedback
// half of the optimise/execute loop: estimated cost and cardinality come
// from PlanExplain, measured rows and time come from here.
func (r *Result) Stats() []OpStat {
	out := make([]OpStat, len(r.profile))
	for i, s := range r.profile {
		out[i] = OpStat(s)
	}
	return out
}

// StatsString renders the execution profile as an aligned table.
func (r *Result) StatsString() string { return r.profile.String() }

// NumRows returns the number of result rows (0 for a failed query).
func (r *Result) NumRows() int {
	if r.rel == nil {
		return 0
	}
	return r.rel.NumRows()
}

// Columns returns the result column names in order (nil for a failed query).
func (r *Result) Columns() []string {
	if r.rel == nil {
		return nil
	}
	return r.rel.ColumnNames()
}

// Next advances the result's row cursor, returning false once every row has
// been consumed (and always for a failed query). Together with Columns and
// Scan it is the streaming surface over a result — consumers like the
// serving layer's JSON encoder emit one row at a time instead of
// materialising a row-major copy:
//
//	for res.Next() {
//	    var a uint32
//	    var n int64
//	    if err := res.Scan(&a, &n); err != nil { ... }
//	}
//
// The cursor starts before the first row and is single-use; it is not safe
// for concurrent use with itself (results are otherwise read-only).
func (r *Result) Next() bool {
	if r.rel == nil || r.cursor >= r.rel.NumRows() {
		return false
	}
	r.cursor++
	return true
}

// Scan copies the current row (positioned by Next) into dest, one pointer
// per result column. Each dest must be a pointer matching the column's
// type — *uint32, *int64, *float64, or *string — or *any, which receives
// uint32/int64/float64/string by column kind.
func (r *Result) Scan(dest ...any) error {
	if r.rel == nil {
		return fmt.Errorf("dqo: Scan on a failed query: %v", r.err)
	}
	if r.cursor == 0 || r.cursor > r.rel.NumRows() {
		return fmt.Errorf("dqo: Scan without a preceding successful Next")
	}
	if len(dest) != r.rel.NumCols() {
		return fmt.Errorf("dqo: Scan wants %d destinations, got %d", r.rel.NumCols(), len(dest))
	}
	row := r.cursor - 1
	for j, c := range r.rel.Columns() {
		if err := scanCell(c, row, dest[j]); err != nil {
			return fmt.Errorf("dqo: Scan column %q: %w", c.Name(), err)
		}
	}
	return nil
}

// scanCell copies one cell into a destination pointer.
func scanCell(c *storage.Column, row int, dest any) error {
	v := c.ValueAt(row)
	switch d := dest.(type) {
	case *uint32:
		if v.Kind != storage.KindUint32 {
			return fmt.Errorf("column is %s, not uint32", v.Kind)
		}
		*d = uint32(v.U)
	case *uint64:
		if v.Kind != storage.KindUint64 && v.Kind != storage.KindUint32 {
			return fmt.Errorf("column is %s, not uint64", v.Kind)
		}
		*d = v.U
	case *int64:
		if v.Kind != storage.KindInt64 {
			return fmt.Errorf("column is %s, not int64", v.Kind)
		}
		*d = int64(v.U)
	case *float64:
		if v.Kind != storage.KindFloat64 {
			return fmt.Errorf("column is %s, not float64", v.Kind)
		}
		*d = v.F
	case *string:
		*d = v.String()
	case *any:
		switch v.Kind {
		case storage.KindUint32:
			*d = uint32(v.U)
		case storage.KindUint64:
			*d = v.U
		case storage.KindInt64:
			*d = int64(v.U)
		case storage.KindFloat64:
			*d = v.F
		case storage.KindString:
			*d = v.S
		default:
			return fmt.Errorf("column has invalid kind")
		}
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return nil
}

// EstimatedCost returns the optimiser's cost estimate for the executed plan.
func (r *Result) EstimatedCost() float64 { return r.plan.Best.Cost }

// PlanExplain renders the executed plan.
func (r *Result) PlanExplain() string { return r.plan.Best.Explain() }

// column fetches a result column, failing cleanly on a partial result.
func (r *Result) column(name string) (*storage.Column, error) {
	if r.rel == nil {
		return nil, fmt.Errorf("dqo: no result relation (query failed: %v)", r.err)
	}
	c, ok := r.rel.Column(name)
	if !ok {
		return nil, fmt.Errorf("dqo: result has no column %q", name)
	}
	return c, nil
}

// Uint32Column returns a uint32 result column by name.
func (r *Result) Uint32Column(name string) ([]uint32, error) {
	c, err := r.column(name)
	if err != nil {
		return nil, err
	}
	if c.Kind() != storage.KindUint32 {
		return nil, fmt.Errorf("dqo: column %q is %s, not uint32", name, c.Kind())
	}
	return c.Uint32s(), nil
}

// Int64Column returns an int64 result column by name.
func (r *Result) Int64Column(name string) ([]int64, error) {
	c, err := r.column(name)
	if err != nil {
		return nil, err
	}
	if c.Kind() != storage.KindInt64 {
		return nil, fmt.Errorf("dqo: column %q is %s, not int64", name, c.Kind())
	}
	return c.Int64s(), nil
}

// Float64Column returns a float64 result column by name.
func (r *Result) Float64Column(name string) ([]float64, error) {
	c, err := r.column(name)
	if err != nil {
		return nil, err
	}
	if c.Kind() != storage.KindFloat64 {
		return nil, fmt.Errorf("dqo: column %q is %s, not float64", name, c.Kind())
	}
	return c.Float64s(), nil
}

// Row returns row i rendered as strings, one per column (nil for a failed
// query).
func (r *Result) Row(i int) []string {
	if r.rel == nil {
		return nil
	}
	vals := r.rel.Row(i)
	out := make([]string, len(vals))
	for j, v := range vals {
		out[j] = v.String()
	}
	return out
}

// String renders the result as an aligned text table (all rows).
func (r *Result) String() string {
	if r.rel == nil {
		return fmt.Sprintf("(query failed: %v)\n", r.err)
	}
	var b strings.Builder
	widths := make([]int, r.rel.NumCols())
	names := r.rel.ColumnNames()
	for j, n := range names {
		widths[j] = len(n)
	}
	rows := make([][]string, r.NumRows())
	for i := 0; i < r.NumRows(); i++ {
		rows[i] = r.Row(i)
		for j, v := range rows[i] {
			if len(v) > widths[j] {
				widths[j] = len(v)
			}
		}
	}
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			if j == len(vals)-1 {
				b.WriteString(v) // no trailing padding
				continue
			}
			fmt.Fprintf(&b, "%-*s", widths[j], v)
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", r.NumRows())
	return b.String()
}
