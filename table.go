package dqo

import (
	"fmt"
	"io"

	"dqo/internal/storage"
)

// Table is a named base relation registered with a DB.
type Table struct {
	rel *storage.Relation
}

// Name returns the table name.
func (t *Table) Name() string { return t.rel.Name() }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rel.NumRows() }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return t.rel.ColumnNames() }

// DeclareCorrelation records that dep is a monotone, non-decreasing function
// of key — the "correlated" data property of the paper, which the optimiser
// exploits to keep order knowledge across joins. Use VerifyCorrelation to
// check a declaration against the data.
func (t *Table) DeclareCorrelation(key, dep string) { t.rel.DeclareCorr(key, dep) }

// VerifyCorrelation checks a correlation against the data (O(n log n)).
func (t *Table) VerifyCorrelation(key, dep string) error { return t.rel.VerifyCorr(key, dep) }

// TableBuilder assembles a table column by column. All columns must have
// equal length; errors are reported by Build.
type TableBuilder struct {
	name string
	cols []*storage.Column
	err  error
}

// NewTableBuilder starts a table named name.
func NewTableBuilder(name string) *TableBuilder {
	return &TableBuilder{name: name}
}

// Uint32 appends a uint32 column (the canonical key type; 4-byte unsigned
// keys are what the paper's experiments use).
func (b *TableBuilder) Uint32(name string, vals []uint32) *TableBuilder {
	b.cols = append(b.cols, storage.NewUint32(name, vals))
	return b
}

// Uint64 appends a uint64 column.
func (b *TableBuilder) Uint64(name string, vals []uint64) *TableBuilder {
	b.cols = append(b.cols, storage.NewUint64(name, vals))
	return b
}

// Int64 appends an int64 column.
func (b *TableBuilder) Int64(name string, vals []int64) *TableBuilder {
	b.cols = append(b.cols, storage.NewInt64(name, vals))
	return b
}

// Float64 appends a float64 column.
func (b *TableBuilder) Float64(name string, vals []float64) *TableBuilder {
	b.cols = append(b.cols, storage.NewFloat64(name, vals))
	return b
}

// String appends a dictionary-encoded string column. Dictionary codes are
// dense, so string columns are natural SPH candidates (paper Section 2.1).
func (b *TableBuilder) String(name string, vals []string) *TableBuilder {
	b.cols = append(b.cols, storage.NewString(name, vals))
	return b
}

// Build finalises the table.
func (b *TableBuilder) Build() (*Table, error) {
	if b.err != nil {
		return nil, b.err
	}
	rel, err := storage.NewRelation(b.name, b.cols...)
	if err != nil {
		return nil, err
	}
	return &Table{rel: rel}, nil
}

// MustBuild is Build that panics on error, for statically correct tables.
func (b *TableBuilder) MustBuild() *Table {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// ColumnKind selects a CSV column type for LoadCSV.
type ColumnKind uint8

// Column kinds accepted by LoadCSV.
const (
	Uint32Col ColumnKind = iota
	Uint64Col
	Int64Col
	Float64Col
	StringCol
)

// CSVColumn declares one column of a CSV file.
type CSVColumn struct {
	Name string
	Kind ColumnKind
}

// LoadCSV reads a table from CSV data with a header row matching the spec.
func LoadCSV(name string, r io.Reader, spec []CSVColumn) (*Table, error) {
	sspec := make([]storage.ColumnSpec, len(spec))
	for i, c := range spec {
		var k storage.Kind
		switch c.Kind {
		case Uint32Col:
			k = storage.KindUint32
		case Uint64Col:
			k = storage.KindUint64
		case Int64Col:
			k = storage.KindInt64
		case Float64Col:
			k = storage.KindFloat64
		case StringCol:
			k = storage.KindString
		default:
			return nil, fmt.Errorf("dqo: invalid column kind %d for %q", c.Kind, c.Name)
		}
		sspec[i] = storage.ColumnSpec{Name: c.Name, Kind: k}
	}
	rel, err := storage.ReadCSV(r, name, sspec)
	if err != nil {
		return nil, err
	}
	return &Table{rel: rel}, nil
}
