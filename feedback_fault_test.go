//go:build faultinject

package dqo

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dqo/internal/faultinject"
)

// TestReplanSpliceFault arms the failure point between the re-plan decision
// and the spliced kernel's execution: the query must fail with the injected
// error (not hang, not fall back silently) and return the partial-result
// post-mortem. Disarmed, the same query succeeds and still splices.
func TestReplanSpliceFault(t *testing.T) {
	db := skewDB(t)
	ctx := context.Background()
	boom := errors.New("injected: replan splice")
	faultinject.Set(faultinject.PointReplanSplice, faultinject.Action{Err: boom})
	defer faultinject.Clear(faultinject.PointReplanSplice)

	res, err := db.Query(ctx, ModeDQO, skewSQL, WithWorkers(1), WithReoptimize(0))
	if err == nil {
		t.Fatal("armed splice point did not fail the query")
	}
	if !errors.Is(err, boom) && !strings.Contains(err.Error(), "replan splice") {
		t.Errorf("unexpected error: %v", err)
	}
	if res == nil {
		t.Error("failed query returned no partial result")
	}
	if faultinject.Fired(faultinject.PointReplanSplice) == 0 {
		t.Error("splice point never fired")
	}

	faultinject.Clear(faultinject.PointReplanSplice)
	ok, err := db.Query(ctx, ModeDQO, skewSQL, WithWorkers(1), WithReoptimize(0))
	if err != nil {
		t.Fatalf("disarmed query failed: %v", err)
	}
	if len(ok.Replans()) == 0 {
		t.Error("disarmed query no longer splices")
	}
}
