package dqo

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dqo/internal/core"
	"dqo/internal/physical"
)

// groupDB builds a DB with one table whose grouping key is half-distinct:
// large enough that plan footprints dwarf fixed overheads, distinct enough
// that hash aggregation's table dominates the footprint.
func groupDB(t testing.TB, n int) *DB {
	t.Helper()
	keys := make([]uint32, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = uint32((i * 2654435761) % (n / 2))
		vals[i] = int64(i)
	}
	tab := NewTableBuilder("T").Uint32("KEY", keys).Int64("VAL", vals).MustBuild()
	db := Open()
	if err := db.Register(tab); err != nil {
		t.Fatal(err)
	}
	return db
}

const groupSQL = "SELECT T.KEY, COUNT(*) FROM T GROUP BY T.KEY"

// TestMemoryLimitTyped starves a query far below any plan's footprint: it
// must fail with the typed budget error — never allocate past the limit —
// and still return a partial Result carrying the plan and profile.
func TestMemoryLimitTyped(t *testing.T) {
	db := groupDB(t, 30000)
	res, err := db.Query(context.Background(), ModeDQO, groupSQL,
		WithMemoryLimit(4096))
	if !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("err = %v, want ErrMemoryBudgetExceeded", err)
	}
	if res == nil {
		t.Fatal("failed query returned no partial result")
	}
	if res.Err() == nil || !errors.Is(res.Err(), ErrMemoryBudgetExceeded) {
		t.Fatalf("partial result Err() = %v", res.Err())
	}
	if res.NumRows() != 0 || res.Columns() != nil {
		t.Fatalf("partial result leaked data: %d rows, cols %v", res.NumRows(), res.Columns())
	}
	if len(res.Stats()) == 0 {
		t.Fatal("partial result carries no execution profile")
	}
	if _, cerr := res.Int64Column("count_star"); cerr == nil {
		t.Fatal("column accessor on failed result did not error")
	}
	if !strings.Contains(res.String(), "query failed") {
		t.Fatalf("String() on failed result: %q", res.String())
	}
}

// TestTimeoutTyped bounds a query with a deadline it cannot meet.
func TestTimeoutTyped(t *testing.T) {
	db := groupDB(t, 100000)
	res, err := db.Query(context.Background(), ModeDQO, groupSQL,
		WithTimeout(50*time.Microsecond))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("underlying deadline cause lost: %v", err)
	}
	// Whether the deadline fired before or during execution, any partial
	// result must carry the same typed error.
	if res != nil && !errors.Is(res.Err(), ErrTimeout) {
		t.Fatalf("partial result Err() = %v", res.Err())
	}
}

// TestCancelledTyped checks a pre-cancelled context surfaces as the typed
// cancellation error with the context sentinel still reachable.
func TestCancelledTyped(t *testing.T) {
	db := groupDB(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.Query(ctx, ModeDQO, groupSQL)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

// TestAdmissionGate exercises the DB-level concurrent-query gate: with the
// single slot occupied and no queue, a query is rejected with the typed
// error; with a queue it waits for the slot instead.
func TestAdmissionGate(t *testing.T) {
	db := groupDB(t, 1000)
	db.SetAdmission(1, 0)
	release, err := db.gate().Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, qerr := db.Query(context.Background(), ModeDQO, groupSQL); !errors.Is(qerr, ErrQueueFull) {
		release()
		t.Fatalf("err = %v, want ErrQueueFull", qerr)
	}
	release()
	if _, qerr := db.Query(context.Background(), ModeDQO, groupSQL); qerr != nil {
		t.Fatalf("query after release failed: %v", qerr)
	}

	// With a queue position, the second query waits for the slot.
	db.SetAdmission(1, 1)
	release, err = db.gate().Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, qerr := db.Query(context.Background(), ModeDQO, groupSQL)
		done <- qerr
	}()
	select {
	case qerr := <-done:
		release()
		t.Fatalf("queued query did not wait: %v", qerr)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	if qerr := <-done; qerr != nil {
		t.Fatalf("queued query failed after slot freed: %v", qerr)
	}
}

// groupKind walks a plan for its top grouping operator's algorithm.
func groupKind(p *core.Plan) (physical.GroupKind, bool) {
	if p.Op == core.OpGroup {
		return p.Group.Kind, true
	}
	for _, c := range p.Children {
		if k, ok := groupKind(c); ok {
			return k, true
		}
	}
	return 0, false
}

// TestBudgetSwitchesPlan pins the acceptance criterion: a budget just below
// the unconstrained plan's footprint makes the optimiser pick a different
// grouping algorithm, and the degraded plan still computes the same result.
func TestBudgetSwitchesPlan(t *testing.T) {
	db := groupDB(t, 30000)
	q := groupSQL + " ORDER BY T.KEY"

	free, _, err := db.compile(ModeDQO, q, queryConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	freeKind, ok := groupKind(free.Best)
	if !ok {
		t.Fatal("unconstrained plan has no grouping operator")
	}

	limit := int64(free.Best.Mem) - 1
	tight, _, err := db.compile(ModeDQO, q, queryConfig{memLimit: limit}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tightKind, ok := groupKind(tight.Best)
	if !ok || tightKind == freeKind {
		t.Fatalf("budget %d did not move the plan off %v", limit, freeKind)
	}

	want, err := db.Query(context.Background(), ModeDQO, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(context.Background(), ModeDQO, q,
		WithMemoryLimit(limit))
	if err != nil {
		t.Fatalf("degraded plan failed: %v", err)
	}
	if want.String() != got.String() {
		t.Fatal("degraded plan computes a different result")
	}
}

// TestNoBudgetPlanIdentity pins the other half of the criterion: without a
// budget the governance machinery must not perturb planning or results.
func TestNoBudgetPlanIdentity(t *testing.T) {
	db := groupDB(t, 10000)
	q := groupSQL + " ORDER BY T.KEY"
	plain, err := db.Query(context.Background(), ModeDQO, q)
	if err != nil {
		t.Fatal(err)
	}
	opted, err := db.Query(context.Background(), ModeDQO, q, WithMemoryLimit(0))
	if err != nil {
		t.Fatal(err)
	}
	if plain.PlanExplain() != opted.PlanExplain() {
		t.Fatal("MemoryLimit=0 changed the chosen plan")
	}
	if plain.String() != opted.String() {
		t.Fatal("MemoryLimit=0 changed the result")
	}
}
