package dqo

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"testing"

	"dqo/internal/core"
	"dqo/internal/exec"
)

// TestSpillDifferential forces the disk path onto every spill-compatible
// breaker of the full query corpus and checks byte-identical results against
// the serial bulk reference at every (workers, morsel) combination — the
// spill counterpart of TestMorselDifferential. The corpus would never be
// memory-starved, so MarkSpillTwins plus a one-byte run quota stand in for
// starvation; the vacuity guards ensure both the marking and the disk
// traffic actually happened.
func TestSpillDifferential(t *testing.T) {
	db := corpusDB(t)
	totalMarked, totalSpilled := 0, int64(0)
	for _, query := range corpusQueries {
		for _, mode := range declaredModes {
			// Reference first: marking mutates the cached plan in place, so
			// the bulk reference must run before the twins are forced.
			want := bulkQuery(t, db, mode, query, 1)
			res, stmt, err := db.compile(mode, query, queryConfig{workers: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			marked := core.MarkSpillTwins(res.Best)
			if marked == 0 {
				continue // nothing spill-compatible in this plan (AV/index/stream-only)
			}
			for _, workers := range workerCounts() {
				for _, morsel := range []int{1, 7, 1024} {
					root, err := core.Compile(res.Best)
					if err != nil {
						t.Fatal(err)
					}
					if stmt.Limit >= 0 {
						root = exec.NewLimit(root, stmt.Limit)
					}
					dir := t.TempDir()
					ec := exec.NewExecContext(context.Background(), morsel, workers)
					ec.SetSpill(dir, 0)
					ec.SetSpillQuota(1)
					out, err := exec.Run(ec, root)
					if err != nil {
						t.Fatalf("%s/%q/morsel=%d/workers=%d: spill run: %v", mode, query, morsel, workers, err)
					}
					var spilled int64
					for _, s := range exec.CollectProfile(root) {
						spilled += s.SpillBytes
					}
					if ents, rdErr := os.ReadDir(dir); rdErr != nil || len(ents) != 0 {
						t.Fatalf("%s/%q: spill directory not cleaned: %d entries, err=%v", mode, query, len(ents), rdErr)
					}
					got, err := applyAliases(out, stmt)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Errorf("%s / %q / morsel=%d / workers=%d: spill-forced plan diverges from bulk reference\nbulk:\n%s\nspill:\n%s",
							mode, query, morsel, workers, want, got)
					}
					totalMarked += marked
					totalSpilled += spilled
				}
			}
		}
	}
	if totalMarked == 0 {
		t.Fatal("no corpus plan had a spill-compatible breaker; differential is vacuous")
	}
	if totalSpilled == 0 {
		t.Fatal("spill-marked plans never wrote a run file; differential is vacuous")
	}
}

// spillJoinDB registers two n-row tables with nearly disjoint distinct keys
// plus a small planted overlap: the build-side hash table dominates
// in-memory residency while the join output stays tiny — the query shape
// where spilling beats aborting.
func spillJoinDB(t testing.TB, n int) *DB {
	t.Helper()
	mk := func(seed uint32) []uint32 {
		keys := make([]uint32, n)
		x := seed | 1
		for i := range keys {
			x = x*1664525 + 1013904223
			keys[i] = x
		}
		return keys
	}
	rk, sk := mk(3), mk(9)
	copy(sk[:32], rk[:32]) // planted matches so the join output is nonempty
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	db := Open()
	for name, keys := range map[string][]uint32{"bigr": rk, "bigs": sk} {
		tab := NewTableBuilder(name).Uint32("key", keys).Int64("val", vals).MustBuild()
		if err := db.Register(tab); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// resultRows renders a result as a sorted row multiset. The unlimited
// baseline and the starved spill plan may pick different join kinds, which
// order their output differently; content identity is the cross-plan check
// (byte-identity against the same base plan is proved by the kernel twin
// tests and TestSpillDifferential).
func resultRows(r *Result) []string {
	out := make([]string, r.NumRows())
	for i := range out {
		out[i] = fmt.Sprint(r.Row(i))
	}
	sort.Strings(out)
	return out
}

// TestSpillCompletesPreviouslyAbortingQuery is the issue's acceptance
// scenario, driven entirely through the public API: find a memory limit
// where the query aborts with ErrMemoryBudgetExceeded, then run it again at
// that exact limit with WithSpillDir — it must complete with nonzero
// SpilledBytes and the same rows as the unlimited baseline, and a tiny
// WithSpillLimit must instead fail with the typed ErrSpillLimitExceeded.
func TestSpillCompletesPreviouslyAbortingQuery(t *testing.T) {
	db := spillJoinDB(t, 120_000)
	const query = "SELECT * FROM bigr JOIN bigs ON bigr.key = bigs.key"
	ctx := context.Background()

	baseline, err := db.Query(ctx, ModeDQOCalibrated, query)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.NumRows() == 0 {
		t.Fatal("planted matches missing; the scenario would be vacuous")
	}

	// Descend on the measured high-water mark until the runtime budget
	// aborts the query: each rung's limit sits just below the previous
	// successful run's peak.
	limit := int64(64 << 20)
	var abortLimit int64
	for rung := 0; rung < 16; rung++ {
		res, err := db.Query(ctx, ModeDQOCalibrated, query, WithMemoryLimit(limit))
		if err != nil {
			if !errors.Is(err, ErrMemoryBudgetExceeded) {
				t.Fatalf("limit=%d: got %v, want ErrMemoryBudgetExceeded", limit, err)
			}
			abortLimit = limit
			break
		}
		next := res.PeakBytes() - 1
		if next <= 0 || next >= limit {
			t.Fatalf("descent stuck: peak %d at limit %d", res.PeakBytes(), limit)
		}
		limit = next
	}
	if abortLimit == 0 {
		t.Fatal("descent never found an aborting memory limit")
	}

	// Same budget, spilling armed: the query that just aborted completes.
	dir := t.TempDir()
	res, err := db.Query(ctx, ModeDQOCalibrated, query,
		WithMemoryLimit(abortLimit), WithSpillDir(dir))
	if err != nil {
		t.Fatalf("spill run at the aborting limit %d failed: %v", abortLimit, err)
	}
	if res.SpilledBytes() == 0 {
		t.Fatalf("query completed at limit %d without touching disk; scenario is vacuous", abortLimit)
	}
	got, want := resultRows(res), resultRows(baseline)
	if len(got) != len(want) {
		t.Fatalf("spilled run returned %d rows, baseline %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs:\nspilled:  %s\nbaseline: %s", i, got[i], want[i])
		}
	}
	if ents, rdErr := os.ReadDir(dir); rdErr != nil || len(ents) != 0 {
		t.Fatalf("run files left behind: %d entries, err=%v", len(ents), rdErr)
	}

	// Same budget again, but a disk cap too small for the partitions: the
	// typed spill-limit error, not a silent fallback.
	_, err = db.Query(ctx, ModeDQOCalibrated, query,
		WithMemoryLimit(abortLimit), WithSpillDir(dir), WithSpillLimit(32<<10))
	if !errors.Is(err, ErrSpillLimitExceeded) {
		t.Fatalf("32KiB disk cap: got %v, want ErrSpillLimitExceeded", err)
	}
	if ents, rdErr := os.ReadDir(dir); rdErr != nil || len(ents) != 0 {
		t.Fatalf("capped run leaked files: %d entries, err=%v", len(ents), rdErr)
	}
}
