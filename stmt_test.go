package dqo

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestPrepareBasics pins the prepared-statement contract: a "?" parameter
// binds per execution, and each execution matches the equivalent concrete
// query byte for byte.
func TestPrepareBasics(t *testing.T) {
	db := testDB(t, false, false, true)
	stmt, err := db.Prepare(ModeDQOCalibrated,
		"SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID WHERE R.A < ? GROUP BY R.A ORDER BY R.A")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}
	if stmt.Mode() != ModeDQOCalibrated || !strings.Contains(stmt.SQL(), "?") {
		t.Fatalf("metadata wrong: mode %v, sql %q", stmt.Mode(), stmt.SQL())
	}
	for _, bound := range []int{5, 30, 77} {
		got, err := stmt.Query(context.Background(), bound)
		if err != nil {
			t.Fatalf("Query(%d): %v", bound, err)
		}
		want, err := db.Query(context.Background(), ModeDQOCalibrated,
			strings.Replace(stmt.SQL(), "?", strconv.Itoa(bound), 1))
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("Query(%d) differs from concrete query:\nwant:\n%s\ngot:\n%s",
				bound, want.String(), got.String())
		}
	}
}

// TestPrepareValidation: names are checked at Prepare, argument counts and
// types at execution.
func TestPrepareValidation(t *testing.T) {
	db := testDB(t, false, false, true)
	if _, err := db.Prepare(ModeDQO, "SELECT nope FROM R WHERE A = ?"); err == nil {
		t.Fatal("unknown column accepted at Prepare")
	}
	if _, err := db.Prepare(Mode(99), "SELECT ID FROM R"); err == nil {
		t.Fatal("unknown mode accepted at Prepare")
	}
	stmt, err := db.Prepare(ModeDQO, "SELECT ID FROM R WHERE A < ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(context.Background()); err == nil {
		t.Fatal("missing argument accepted")
	}
	if _, err := stmt.Query(context.Background(), 1, 2); err == nil {
		t.Fatal("extra argument accepted")
	}
	if _, err := stmt.Query(context.Background(), []byte("x")); err == nil {
		t.Fatal("unsupported argument type accepted")
	}
	// A parameterised statement cannot run through the plain Query path.
	if _, err := db.Query(context.Background(), ModeDQO, "SELECT ID FROM R WHERE A < ?"); err == nil {
		t.Fatal("unbound parameter accepted by Query")
	}
}

// TestPreparedPlansOnce: executions of one prepared statement share a plan
// template — one miss, then hits — even when the DB-level cache is off.
func TestPreparedPlansOnce(t *testing.T) {
	db := testDB(t, false, false, true)
	stmt, err := db.Prepare(ModeDQOCalibrated, "SELECT ID FROM R WHERE A = ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, arg := range []int{3, 7, 50, 11} {
		if _, err := stmt.Query(context.Background(), arg); err != nil {
			t.Fatalf("Query(%d): %v", arg, err)
		}
	}
	hits, misses := db.PlanCacheStats()
	if misses != 1 || hits != 3 {
		t.Fatalf("plan cache = %d hits / %d misses, want 3/1", hits, misses)
	}
	// A template hit enumerates nothing.
	before := db.Metrics().OptimizerAlternatives
	if _, err := stmt.Query(context.Background(), 42); err != nil {
		t.Fatal(err)
	}
	if after := db.Metrics().OptimizerAlternatives; after != before {
		t.Fatalf("prepared repeat enumerated %d alternatives, want 0", after-before)
	}
}

// TestPreparedConcurrent executes one statement from many goroutines with
// different arguments; results must stay argument-correct (no cross-talk
// through the shared template).
func TestPreparedConcurrent(t *testing.T) {
	db := testDB(t, false, false, true)
	stmt, err := db.Prepare(ModeDQOCalibrated,
		"SELECT A, COUNT(*) FROM R WHERE A < ? GROUP BY A")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				want := 1 + (w*10+i)%40
				res, err := stmt.Query(context.Background(), want)
				if err != nil {
					errc <- err
					return
				}
				if res.NumRows() != want {
					errc <- errRows{want, res.NumRows()}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type errRows struct{ want, got int }

func (e errRows) Error() string {
	return "prepared result has " + strconv.Itoa(e.got) + " rows, want " + strconv.Itoa(e.want)
}

// TestStringArgsAndFloats covers the remaining literal kinds through the
// parameter binder.
func TestStringArgsAndFloats(t *testing.T) {
	tab := NewTableBuilder("p").
		Uint32("id", []uint32{1, 2, 3}).
		String("name", []string{"ada", "bob", "cyd"}).
		Float64("score", []float64{9.5, 7.25, 8.0}).
		MustBuild()
	db := Open()
	if err := db.Register(tab); err != nil {
		t.Fatal(err)
	}
	byName, err := db.Prepare(ModeDQO, "SELECT id FROM p WHERE name = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := byName.Query(context.Background(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := res.Uint32Column("p.id")
	if err != nil || len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("ids = %v, %v", ids, err)
	}
	byScore, err := db.Prepare(ModeDQO, "SELECT id FROM p WHERE score > ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err = byScore.Query(context.Background(), 8.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("%d rows, want 1 (only ada scores > 8.5)", res.NumRows())
	}
}

// TestResultIterator drives the Columns/Next/Scan streaming surface.
func TestResultIterator(t *testing.T) {
	db := testDB(t, true, true, true)
	res, err := db.Query(context.Background(), ModeDQO,
		"SELECT ID, A FROM R WHERE A < 10 ORDER BY ID LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scan(new(uint32), new(uint32)); err == nil {
		t.Fatal("Scan before Next accepted")
	}
	var (
		n      int
		lastID uint32
	)
	for res.Next() {
		var id, a uint32
		if err := res.Scan(&id, &a); err != nil {
			t.Fatal(err)
		}
		if n > 0 && id < lastID {
			t.Fatalf("rows out of order: %d after %d", id, lastID)
		}
		if a >= 10 {
			t.Fatalf("filter violated: A = %d", a)
		}
		lastID = id
		n++
	}
	if n != res.NumRows() || n != 7 {
		t.Fatalf("iterated %d rows, want %d", n, res.NumRows())
	}
	if res.Next() {
		t.Fatal("Next after exhaustion")
	}

	// Destination validation.
	res2, err := db.Query(context.Background(), ModeDQO, "SELECT ID FROM R LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	res2.Next()
	if err := res2.Scan(new(uint32), new(uint32)); err == nil {
		t.Fatal("wrong destination count accepted")
	}
	if err := res2.Scan(new(int64)); err == nil {
		t.Fatal("wrong destination type accepted")
	}
	var anyCell any
	if err := res2.Scan(&anyCell); err != nil {
		t.Fatal(err)
	}
	if _, ok := anyCell.(uint32); !ok {
		t.Fatalf("*any destination got %T", anyCell)
	}
	var asString string
	res3, _ := db.Query(context.Background(), ModeDQO, "SELECT ID FROM R LIMIT 1")
	res3.Next()
	if err := res3.Scan(&asString); err != nil || asString == "" {
		t.Fatalf("string destination: %q, %v", asString, err)
	}

	// A failed query's iterator is empty and Scan reports the failure.
	bad, _ := db.Query(context.Background(), ModeDQO, "SELECT ID FROM R LIMIT 1")
	bad.rel = nil
	if bad.Next() {
		t.Fatal("Next on failed result")
	}
}
