package dqo

import "dqo/internal/qerr"

// The typed error taxonomy every query failure maps onto. Match with
// errors.Is; the underlying cause (e.g. context.DeadlineExceeded under
// ErrTimeout) stays reachable through errors.Is/As as well.
var (
	// ErrCancelled reports a query aborted by context cancellation.
	ErrCancelled = qerr.ErrCancelled
	// ErrTimeout reports a query aborted by its deadline
	// (WithTimeout or a context deadline).
	ErrTimeout = qerr.ErrTimeout
	// ErrMemoryBudgetExceeded reports a query that hit its
	// WithMemoryLimit budget: the reservation that would have passed the
	// limit failed instead of allocating.
	ErrMemoryBudgetExceeded = qerr.ErrMemoryBudgetExceeded
	// ErrQueueFull reports a query rejected by the admission gate
	// (SetAdmission) because all slots and queue positions were taken.
	ErrQueueFull = qerr.ErrQueueFull
	// ErrSpillLimitExceeded reports a spilling query that hit its
	// WithSpillLimit cap on live run-file bytes: the spill write that would
	// have passed the cap failed instead of touching disk.
	ErrSpillLimitExceeded = qerr.ErrSpillLimitExceeded
	// ErrSpillIO reports a spill run-file I/O failure — disk full, a short
	// write, or a corrupt frame (bad magic or checksum) on read-back.
	ErrSpillIO = qerr.ErrSpillIO
	// ErrInternal reports a panic inside the execution engine, converted to
	// an error with the panic site's stack trace attached.
	ErrInternal = qerr.ErrInternal
)
