// Package dqo is an in-memory columnar query engine whose optimiser
// implements Deep Query Optimisation (DQO) as proposed by Dittrich and Nix,
// "The Case for Deep Query Optimisation", CIDR 2020.
//
// Instead of translating logical operators into opaque physical operators in
// one step (shallow query optimisation, SQO), the DQO optimiser unnests
// operators into sub-components — index structure families, hash-table
// schemes, hash functions, sort algorithms, loop disciplines — and
// enumerates plans over that finer space while tracking a richer set of
// data properties (sortedness, clustering, key density, order
// correlations). Precomputed components can be materialised as Algorithmic
// Views and are selected for a workload by the AVSP solvers.
//
// # Quick start
//
//	db := dqo.Open()
//	_ = db.Register(dqo.NewTableBuilder("R").
//		Uint32("ID", ids).Uint32("A", groups).MustBuild())
//	_ = db.Register(dqo.NewTableBuilder("S").
//		Uint32("R_ID", fks).Int64("M", vals).MustBuild())
//
//	res, err := db.Query(ctx, dqo.ModeDQO,
//		"SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A")
//
// Query accepts functional options (WithWorkers, WithMorselSize,
// WithMemoryLimit, WithTimeout, WithTracer) to tune one run. Use db.Explain
// to see the chosen plan, its estimated cost, and its property vector at
// every operator; Explain's verbosity options add the granule trees
// (ExplainGranules), the unnesting chains (ExplainUnnesting), or an
// executed estimated-vs-measured operator table (ExplainAnalyze). Every
// query's lifecycle is observable: phase/operator span trees flow to the
// DB's Tracer (Result.Trace, DB.LastTrace) and cumulative counters to
// DB.Metrics / DB.WriteMetrics.
//
// # Prepared statements
//
// Query shapes that repeat with different literals are prepared once and
// executed many times. Prepare parses and name-checks a statement whose
// literals are written as positional "?" parameters; each Stmt.Query binds
// one argument set and executes. Executions ride the plan-template cache
// even when the DB-level cache is off: the first execution plans, every
// later one rebinds the cached template with zero enumeration.
//
//	stmt, err := db.Prepare(dqo.ModeDQOCalibrated,
//		"SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID WHERE R.A < ? GROUP BY R.A")
//	res, err := stmt.Query(ctx, 100)
//
// # Consuming results
//
// A Result holds the full materialised answer. Columns names the output
// columns; Next advances a cursor over the rows; Scan copies the current
// row into typed destinations (*uint32, *uint64, *int64, *float64,
// *string, or *any), one per column:
//
//	for res.Next() {
//		var a, n uint32
//		if err := res.Scan(&a, &n); err != nil { ... }
//	}
//
// Whole columns are available in one call via Uint32Column and friends,
// the execution profile via Result.Stats, and String renders an aligned
// table. The network serving layer (cmd/dqoserve, internal/serve) streams
// its JSON responses through this same cursor.
package dqo
