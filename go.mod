module dqo

go 1.22
