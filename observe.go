package dqo

import (
	"fmt"
	"io"
	"time"

	"dqo/internal/exec"
	"dqo/internal/obs"
)

// Tracer receives one QueryTrace per finished query (successful or not).
// Implementations must be safe for concurrent use; TraceQuery runs after
// the query completes, never on the execution hot path.
type Tracer = obs.Tracer

// QueryTrace is the complete span-tree record of one query's lifecycle.
type QueryTrace = obs.QueryTrace

// Span is one timed node of a query trace: a lifecycle phase or, under the
// "execute" phase, one physical operator.
type Span = obs.Span

// RingTracer is the built-in Tracer: an in-memory ring buffer keeping the
// traces of the last N queries. Every DB opens with one (size 32).
type RingTracer = obs.RingTracer

// NewRingTracer returns a ring tracer retaining the last n query traces.
func NewRingTracer(n int) *RingTracer { return obs.NewRingTracer(n) }

// MetricsSnapshot is a point-in-time view of a DB's cumulative metrics; see
// DB.Metrics. Its WriteProm method emits the Prometheus text exposition.
type MetricsSnapshot = obs.Snapshot

// SetTracer installs the DB's tracer; every query's trace is delivered to
// it unless the query overrides with WithTracer. nil disables tracing.
func (db *DB) SetTracer(t Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = t
}

// Tracer returns the DB's current tracer (nil when tracing is disabled).
func (db *DB) Tracer() Tracer {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tracer
}

// LastTrace returns the most recent query trace when the DB's tracer is the
// built-in ring tracer (the default), nil otherwise.
func (db *DB) LastTrace() *QueryTrace {
	if ring, ok := db.Tracer().(*RingTracer); ok {
		return ring.Last()
	}
	return nil
}

// Metrics returns a consistent snapshot of the DB's cumulative metrics:
// query counts by mode and error kind (the kinds exactly partition the
// failures), the end-to-end latency histogram, admission gate activity,
// plan-cache hit rate, optimiser alternatives enumerated, executor morsel
// counters, and the memory high-water mark.
func (db *DB) Metrics() MetricsSnapshot {
	s := db.metrics.Snapshot()
	s.PlanCacheHits, s.PlanCacheMisses = db.planCache.Stats()
	g := db.gate()
	s.AdmissionRunning = g.Running()
	s.AdmissionQueued = g.Queued()
	s.Morsels = db.execCounters.Morsels.Load()
	s.MorselRows = db.execCounters.Rows.Load()
	return s
}

// WriteMetrics writes the current metrics snapshot to w in the Prometheus
// text exposition format.
func (db *DB) WriteMetrics(w io.Writer) error {
	return db.Metrics().WriteProm(w)
}

// phaseTimes are the measured lifecycle phase durations of one query, plus
// the planning-tier facts the optimise phase records (chosen tier, beam
// width, plan-cache outcome).
type phaseTimes struct {
	parse     time.Duration
	bind      time.Duration
	optimise  time.Duration
	compile   time.Duration
	admission time.Duration
	execute   time.Duration
	cacheHit  bool
	tier      string // planning tier: "greedy", "beam", "deep", "shallow"
	beam      int    // beam width (0 = exact enumeration)
	feedback  bool   // the optimiser planned through the DB's feedback store
	fbVersion uint64 // feedback store version the plan was built against
}

// dur returns the phase durations in obs.Phases() order.
func (p *phaseTimes) dur() [6]time.Duration {
	return [6]time.Duration{p.parse, p.bind, p.optimise, p.compile, p.admission, p.execute}
}

// observe records one finished query into the DB's metrics and delivers its
// trace. It runs on every return path — a parse error and a morsel-level
// abort both count — which is what keeps Metrics' partition invariant
// (queries == ok + sum of error kinds) exact.
func (db *DB) observe(tracer Tracer, mode Mode, query string, start time.Time,
	total time.Duration, pt *phaseTimes, res *Result, err error) {
	db.metrics.RecordQuery(mode.String(), obs.KindLabel(err), total)
	if peak := resultPeakBytes(res); peak > 0 {
		db.metrics.ObserveMemPeak(peak)
	}
	if res != nil {
		if n := res.SpilledBytes(); n > 0 {
			db.metrics.ObserveSpill(n)
		}
	}
	if res != nil {
		res.phases = *pt
	}
	if tracer == nil {
		return
	}
	trace := buildTrace(mode, query, start, total, pt, res, err)
	if res != nil {
		res.trace = trace
	}
	tracer.TraceQuery(trace)
}

// resultPeakBytes is the query's measured memory peak: the budget's
// high-water mark when one was installed, else the largest per-operator
// peak in the profile.
func resultPeakBytes(res *Result) int64 {
	if res == nil {
		return 0
	}
	if res.memPeak > 0 {
		return res.memPeak
	}
	var max int64
	for _, s := range res.profile {
		if s.PeakBytes > max {
			max = s.PeakBytes
		}
	}
	return max
}

// buildTrace assembles the span tree of one query: a root "query" span with
// one child per lifecycle phase, and the per-operator span tree (rebuilt
// from the execution profile) under the execute phase.
func buildTrace(mode Mode, query string, start time.Time, total time.Duration,
	pt *phaseTimes, res *Result, err error) *obs.QueryTrace {
	root := &obs.Span{Name: "query", Dur: total}
	offset := time.Duration(0)
	durs := pt.dur()
	for i, name := range obs.Phases() {
		sp := &obs.Span{Name: name, Start: offset, Dur: durs[i]}
		if name == obs.PhaseOptimise && pt.tier != "" {
			// Planning-time attribution: which tier planned this query, at
			// what beam width, and whether the template cache answered.
			sp.SetAttr("tier", pt.tier)
			if pt.beam > 0 {
				sp.SetAttr("beam", fmt.Sprintf("%d", pt.beam))
			}
			if pt.cacheHit {
				sp.SetAttr("plan-cache", "hit")
			}
			if pt.feedback {
				sp.SetAttr("feedback", fmt.Sprintf("v%d", pt.fbVersion))
			}
		}
		offset += durs[i]
		root.Children = append(root.Children, sp)
	}
	if res != nil && len(res.profile) > 0 {
		execSpan := root.Children[len(root.Children)-1]
		execSpan.Children = profileSpans(res.profile, execSpan.Start)
	}
	return &obs.QueryTrace{
		Query: query,
		Mode:  mode.String(),
		Start: start,
		Total: total,
		Err:   obs.KindLabel(err),
		Root:  root,
	}
}

// profileSpans rebuilds the operator tree from a pre-order profile using the
// recorded depths. Operators pull from each other synchronously, so no
// per-operator start offset was recorded; children inherit the execute
// phase's start.
func profileSpans(prof exec.Profile, start time.Duration) []*obs.Span {
	var roots []*obs.Span
	stack := make([]*obs.Span, 0, 8) // stack[d] = last span seen at depth d
	for _, s := range prof {
		sp := &obs.Span{
			Name:      s.Label,
			Start:     start,
			Dur:       s.Wall,
			Rows:      s.RowsOut,
			Batches:   s.Batches,
			DOP:       s.DOP,
			PeakBytes: s.PeakBytes,
		}
		if s.Replans > 0 {
			sp.SetAttr("replanned", fmt.Sprintf("%d", s.Replans))
		}
		if s.SpillBytes > 0 {
			sp.SetAttr("spilled", fmt.Sprintf("%d parts, %s", s.SpillParts, obs.FmtBytes(s.SpillBytes)))
		}
		if s.Depth < 0 || s.Depth > len(stack) {
			continue // malformed profile; skip rather than panic
		}
		stack = stack[:s.Depth]
		if s.Depth == 0 {
			roots = append(roots, sp)
		} else {
			parent := stack[s.Depth-1]
			parent.Children = append(parent.Children, sp)
		}
		stack = append(stack, sp)
	}
	return roots
}
