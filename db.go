package dqo

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"dqo/internal/av"
	"dqo/internal/core"
	"dqo/internal/exec"
	"dqo/internal/govern"
	"dqo/internal/hashtable"
	"dqo/internal/logical"
	"dqo/internal/physio"
	"dqo/internal/qerr"
	"dqo/internal/sql"
	"dqo/internal/storage"
)

// Mode selects how queries are optimised.
type Mode uint8

// Optimisation modes.
const (
	// ModeSQO is the shallow baseline: opaque textbook physical operators,
	// sortedness as the only tracked plan property, Table 2 cost model.
	ModeSQO Mode = iota
	// ModeDQO unnests operators to molecule granularity and tracks the full
	// property vector (density, clustering, correlations), Table 2 cost
	// model — the paper's Figure 5 configuration.
	ModeDQO
	// ModeDQOCalibrated is ModeDQO with the molecule-aware calibrated cost
	// model, letting the optimiser discriminate hash-table schemes, hash
	// functions, sort algorithms, and loop parallelism.
	ModeDQOCalibrated
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeSQO:
		return "sqo"
	case ModeDQO:
		return "dqo"
	case ModeDQOCalibrated:
		return "dqo-calibrated"
	default:
		return "unknown"
	}
}

func (m Mode) coreMode() (core.Mode, error) {
	switch m {
	case ModeSQO:
		return core.SQO(), nil
	case ModeDQO:
		return core.DQO(), nil
	case ModeDQOCalibrated:
		return core.DQOCalibrated(), nil
	default:
		return core.Mode{}, fmt.Errorf("dqo: unknown mode %d", uint8(m))
	}
}

// DB is an in-memory database: a set of registered tables, an Algorithmic
// View catalog, and a plan cache.
type DB struct {
	mu         sync.RWMutex
	tables     map[string]*storage.Relation
	avs        *av.Catalog
	planCache  *av.PlanCache
	cachePlans bool
	admission  *govern.Gate
}

// SetAdmission installs a DB-level admission gate: at most maxActive
// queries execute at once, at most maxQueue more wait for a slot, and
// anything beyond that is rejected immediately with ErrQueueFull. A query
// whose context dies while queued returns ErrCancelled/ErrTimeout without
// ever running. maxActive <= 0 removes the gate (unlimited admission).
func (db *DB) SetAdmission(maxActive, maxQueue int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.admission = govern.NewGate(maxActive, maxQueue)
}

func (db *DB) gate() *govern.Gate {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.admission
}

// Open returns an empty database.
func Open() *DB {
	return &DB{
		tables:    make(map[string]*storage.Relation),
		avs:       av.NewCatalog(),
		planCache: av.NewPlanCache(),
	}
}

// Register adds a table. Re-registering a name replaces the table,
// invalidates cached plans, and drops Algorithmic Views materialised from
// the old data (they would be stale).
func (db *DB) Register(t *Table) error {
	if t == nil || t.rel == nil {
		return fmt.Errorf("dqo: Register of nil table")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	name := t.rel.Name()
	if _, existed := db.tables[name]; existed {
		db.avs.DropTable(name)
	}
	db.tables[name] = t.rel
	db.planCache.Clear()
	return nil
}

// Table returns a registered table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.tables[name]
	if !ok {
		return nil, false
	}
	return &Table{rel: rel}, true
}

// Tables returns the registered table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// EnablePlanCache turns the plan-level Algorithmic View on or off: with it
// enabled, repeated queries skip optimisation entirely (the offline vs
// query-time trade-off of paper Section 3).
func (db *DB) EnablePlanCache(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.cachePlans = on
	if !on {
		db.planCache.Clear()
	}
}

// PlanCacheStats returns plan cache hits and misses.
func (db *DB) PlanCacheStats() (hits, misses int) { return db.planCache.Stats() }

// catalogView adapts the table map to the SQL binder's catalog interface.
type catalogView struct{ db *DB }

func (c catalogView) Table(name string) (*storage.Relation, bool) {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	rel, ok := c.db.tables[name]
	return rel, ok
}

// compile parses, binds, and optimises a query. workers > 0 overrides the
// degree of parallelism offered to the optimiser's enumeration (0 keeps the
// mode's default); memLimit > 0 makes the optimiser prune plan alternatives
// whose estimated peak memory exceeds it.
func (db *DB) compile(mode Mode, query string, workers int, memLimit int64) (*core.Result, *sql.SelectStmt, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	node, err := sql.Bind(stmt, catalogView{db})
	if err != nil {
		return nil, nil, err
	}
	cm, err := mode.coreMode()
	if err != nil {
		return nil, nil, err
	}
	if workers > 0 {
		cm.DOP = workers
	}
	if memLimit > 0 {
		cm.MemBudget = memLimit
	}
	prov := av.Qualified{Cat: db.avs, Aliases: aliasMap(stmt)}
	cm = cm.WithAVs(prov, prov).WithCracked(prov)

	db.mu.RLock()
	useCache := db.cachePlans
	db.mu.RUnlock()
	if useCache {
		// The chosen plan depends on the DOP and memory-budget dimensions,
		// so the cache key must too: the same statement planned at different
		// worker counts or budgets may pick different granules.
		key := fmt.Sprintf("%s|dop=%d|mem=%d|%s", mode, cm.DOP, cm.MemBudget, stmt)
		res, _, err := db.planCache.Optimize(key, node, cm)
		return res, stmt, err
	}
	res, err := core.Optimize(node, cm)
	return res, stmt, err
}

// Query optimises and executes a SQL query under the given mode. It is
// QueryContext with a background context.
func (db *DB) Query(mode Mode, query string) (*Result, error) {
	return db.QueryContext(context.Background(), mode, query)
}

// QueryOptions tunes optimisation and execution of one query.
type QueryOptions struct {
	// Workers bounds the query's worker pool AND the degree of parallelism
	// the optimiser enumerates plans at; <= 0 selects GOMAXPROCS. Workers=1
	// plans and executes fully serially.
	Workers int
	// MorselSize is the execution batch row count; <= 0 selects
	// exec.DefaultMorselSize.
	MorselSize int
	// MemoryLimit, when > 0, caps the query's working memory in bytes. The
	// optimiser prunes plan alternatives whose estimated footprint exceeds
	// it (hash aggregation degrades to sort-based, parallel kernels to
	// serial), and at run time materialising operators reserve against a
	// budget that fails the query with ErrMemoryBudgetExceeded rather than
	// allocating past the limit. 0 means unlimited — plans are byte-identical
	// to a query without the option.
	MemoryLimit int64
	// Timeout, when > 0, bounds the query's wall-clock time; on expiry the
	// query aborts at the next morsel boundary with ErrTimeout.
	Timeout time.Duration
}

// QueryContext optimises and executes a SQL query under the given mode,
// through the morsel-driven execution layer. Cancelling ctx aborts the
// query at the next morsel boundary and returns ctx's error; the returned
// Result carries the per-operator execution profile (Result.Stats). A
// LIMIT clause runs as an early-exit operator: upstream operators stop as
// soon as the first N rows are produced — under a parallel pipeline this
// also cancels in-flight sibling morsel tasks. Cancellation is checked on
// entry and throughout execution, but not inside the optimiser itself: a
// ctx cancelled mid-optimisation takes effect before the first morsel runs.
func (db *DB) QueryContext(ctx context.Context, mode Mode, query string) (*Result, error) {
	return db.QueryContextOptions(ctx, mode, query, QueryOptions{})
}

// QueryContextOptions is QueryContext with explicit worker-pool, morsel,
// memory-limit, deadline, and admission behaviour. Every failure is typed:
// errors.Is(err, ErrCancelled / ErrTimeout / ErrMemoryBudgetExceeded /
// ErrQueueFull / ErrInternal) discriminates the cause. When execution fails
// mid-pipeline, the returned *Result is non-nil alongside the error and
// carries the plan plus the partial execution profile (Result.Stats,
// Result.Err); its data accessors report no rows.
func (db *DB) QueryContextOptions(ctx context.Context, mode Mode, query string, opts QueryOptions) (*Result, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, qerr.From(err)
	}
	release, err := db.gate().Enter(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	res, stmt, err := db.compile(mode, query, opts.Workers, opts.MemoryLimit)
	if err != nil {
		return nil, err
	}
	root, err := core.Compile(res.Best)
	if err != nil {
		return nil, err
	}
	if stmt.Limit >= 0 {
		root = exec.NewLimit(root, stmt.Limit)
	}
	var mem *govern.Budget
	if opts.MemoryLimit > 0 {
		mem = govern.NewBudget(opts.MemoryLimit)
	}
	ec := exec.NewExecContextBudget(ctx, opts.MorselSize, opts.Workers, mem)
	rel, err := exec.Run(ec, root)
	if err != nil {
		return &Result{plan: res, profile: exec.CollectProfile(root), err: err}, err
	}
	rel = applyAliases(rel, stmt)
	return &Result{rel: rel, plan: res, profile: exec.CollectProfile(root)}, nil
}

// Explain returns the chosen physical plan for a query without executing
// it: operators, estimated costs and cardinalities, and property vectors.
func (db *DB) Explain(mode Mode, query string) (string, error) {
	res, _, err := db.compile(mode, query, 0, 0)
	if err != nil {
		return "", err
	}
	header := fmt.Sprintf("mode=%s model=%s alternatives=%d kept=%d physicality=%.2f time=%s\n",
		res.Mode.Name, res.Mode.Model.Name(), res.Stats.Alternatives, res.Stats.Kept,
		res.Physicality(), res.Stats.Duration)
	return header + res.Best.Explain(), nil
}

// ExplainDeep is Explain plus the granule tree (the paper's Figure 3 view)
// of every chosen join and grouping implementation.
func (db *DB) ExplainDeep(mode Mode, query string) (string, error) {
	res, _, err := db.compile(mode, query, 0, 0)
	if err != nil {
		return "", err
	}
	return res.Best.ExplainDeep(), nil
}

// ExplainUnnest renders the paper's Figure 3 for the chosen plan: the
// step-by-step unnesting chain from each logical operator to the fully
// resolved deep implementation, with the physicality measure at every step.
func (db *DB) ExplainUnnest(mode Mode, query string) (string, error) {
	res, _, err := db.compile(mode, query, 0, 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	var rec func(p *core.Plan)
	rec = func(p *core.Plan) {
		for _, c := range p.Children {
			rec(c)
		}
		var steps []*physio.Granule
		switch p.Op {
		case core.OpGroup:
			steps = physio.UnnestSteps(p.Group, p.GroupKey)
		case core.OpJoin:
			steps = physio.UnnestJoinSteps(p.Join, p.LeftKey, p.RightKey)
		default:
			return
		}
		fmt.Fprintf(&b, "== unnesting %s ==\n", p.Label())
		for i, s := range steps {
			fmt.Fprintf(&b, "step %d (physicality %.2f):\n%s\n", i, s.Physicality(), s.Render())
		}
	}
	rec(res.Best)
	return b.String(), nil
}

// applyAliases renames result columns according to SELECT ... AS aliases on
// plain columns (aggregate aliases are applied during planning).
func applyAliases(rel *storage.Relation, stmt *sql.SelectStmt) *storage.Relation {
	renames := map[string]string{}
	for _, it := range stmt.Items {
		if it.Agg == nil && it.Alias != "" {
			// The bound plan uses qualified names; try both spellings.
			renames[it.Col] = it.Alias
		}
	}
	if len(renames) == 0 {
		return rel
	}
	cols := make([]*storage.Column, 0, rel.NumCols())
	for _, c := range rel.Columns() {
		name := c.Name()
		if alias, ok := renames[name]; ok {
			cols = append(cols, c.Rename(alias))
			continue
		}
		// Bare reference in SELECT, qualified in the plan.
		matched := false
		for ref, alias := range renames {
			if suffixAfterDot(name) == ref {
				cols = append(cols, c.Rename(alias))
				matched = true
				break
			}
		}
		if !matched {
			cols = append(cols, c)
		}
	}
	out, err := storage.NewRelation(rel.Name(), cols...)
	if err != nil {
		return rel // clashing aliases: keep original names
	}
	return out
}

// aliasMap collects the alias -> base-table mapping of a statement, used to
// resolve Algorithmic Views against aliased, qualified plans.
func aliasMap(stmt *sql.SelectStmt) map[string]string {
	m := map[string]string{stmt.From.Name(): stmt.From.Table}
	for _, j := range stmt.Joins {
		m[j.Table.Name()] = j.Table.Table
	}
	return m
}

func suffixAfterDot(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// MaterializeSortedAV materialises a sorted-projection Algorithmic View of
// table by column and registers it with the optimiser.
func (db *DB) MaterializeSortedAV(table, column string) error {
	rel, ok := db.lookup(table)
	if !ok {
		return fmt.Errorf("dqo: unknown table %q", table)
	}
	v, err := av.MaterializeSorted(table, rel, column)
	if err != nil {
		return err
	}
	db.avs.Add(v)
	db.planCache.Clear()
	return nil
}

// MaterializeHashIndexAV materialises a hash-index AV (prepaid hash-join
// build) on table.column.
func (db *DB) MaterializeHashIndexAV(table, column string) error {
	rel, ok := db.lookup(table)
	if !ok {
		return fmt.Errorf("dqo: unknown table %q", table)
	}
	v, err := av.MaterializeHashIndex(table, rel, column, hashtable.Murmur3Fin)
	if err != nil {
		return err
	}
	db.avs.Add(v)
	db.planCache.Clear()
	return nil
}

// MaterializeSPHAV materialises a static-perfect-hash directory AV (prepaid
// SPH-join build) on a dense key column.
func (db *DB) MaterializeSPHAV(table, column string) error {
	rel, ok := db.lookup(table)
	if !ok {
		return fmt.Errorf("dqo: unknown table %q", table)
	}
	v, err := av.MaterializeSPH(table, rel, column)
	if err != nil {
		return err
	}
	db.avs.Add(v)
	db.planCache.Clear()
	return nil
}

// MaterializeCrackedAV materialises an adaptive (cracked) index AV on
// table.column: range filters on that column are answered by the index,
// which partitions itself along query bounds — indexing work happens at
// query time, driven by the workload.
func (db *DB) MaterializeCrackedAV(table, column string) error {
	rel, ok := db.lookup(table)
	if !ok {
		return fmt.Errorf("dqo: unknown table %q", table)
	}
	v, err := av.MaterializeCracked(table, rel, column)
	if err != nil {
		return err
	}
	db.avs.Add(v)
	db.planCache.Clear()
	return nil
}

// DescribeAVs renders the AV catalog.
func (db *DB) DescribeAVs() string { return db.avs.String() }

// DropAVs removes every materialised AV.
func (db *DB) DropAVs() {
	db.avs = av.NewCatalog()
	db.planCache.Clear()
}

// SelectAVs solves the Algorithmic View Selection Problem for a workload of
// (query, frequency) pairs under a byte budget, using submodular greedy
// selection, and installs the chosen views. It returns a human-readable
// report.
func (db *DB) SelectAVs(mode Mode, workload map[string]float64, budgetBytes int64) (string, error) {
	cm, err := mode.coreMode()
	if err != nil {
		return "", err
	}
	var queries []av.WorkloadQuery
	for q, freq := range workload {
		stmt, err := sql.Parse(q)
		if err != nil {
			return "", fmt.Errorf("dqo: workload query %q: %w", q, err)
		}
		node, err := sql.Bind(stmt, catalogView{db})
		if err != nil {
			return "", fmt.Errorf("dqo: workload query %q: %w", q, err)
		}
		queries = append(queries, av.WorkloadQuery{Name: q, Plan: node, Freq: freq, Aliases: aliasMap(stmt)})
	}
	db.mu.RLock()
	tables := make(map[string]*storage.Relation, len(db.tables))
	for n, r := range db.tables {
		tables[n] = r
	}
	db.mu.RUnlock()

	cands, err := av.EnumerateCandidates(tables, queries)
	if err != nil {
		return "", err
	}
	sel, err := av.SelectGreedy(cands, queries, cm, budgetBytes)
	if err != nil {
		return "", err
	}
	for _, v := range sel.Views {
		db.avs.Add(v)
	}
	db.planCache.Clear()
	return sel.String(), nil
}

func (db *DB) lookup(table string) (*storage.Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.tables[table]
	return rel, ok
}

// bindForTest exposes parse+bind for the root test suite and benchmarks.
func (db *DB) bind(query string) (logical.Node, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return sql.Bind(stmt, catalogView{db})
}
