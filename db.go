package dqo

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dqo/internal/av"
	"dqo/internal/core"
	"dqo/internal/exec"
	"dqo/internal/feedback"
	"dqo/internal/govern"
	"dqo/internal/hashtable"
	"dqo/internal/logical"
	"dqo/internal/obs"
	"dqo/internal/physio"
	"dqo/internal/qerr"
	"dqo/internal/sql"
	"dqo/internal/storage"
)

// Mode selects how queries are optimised.
type Mode uint8

// Optimisation modes.
const (
	// ModeSQO is the shallow baseline: opaque textbook physical operators,
	// sortedness as the only tracked plan property, Table 2 cost model.
	ModeSQO Mode = iota
	// ModeDQO unnests operators to molecule granularity and tracks the full
	// property vector (density, clustering, correlations), Table 2 cost
	// model — the paper's Figure 5 configuration.
	ModeDQO
	// ModeDQOCalibrated is ModeDQO with the molecule-aware calibrated cost
	// model, letting the optimiser discriminate hash-table schemes, hash
	// functions, sort algorithms, and loop parallelism.
	ModeDQOCalibrated
	// ModeGreedy is the fast planning tier: the deep granule vocabulary and
	// calibrated model of ModeDQOCalibrated, but a single greedy pass
	// instead of dynamic programming — join build/probe roles ordered by
	// visible selectivity (literal predicates, cracked-index ranges, AV
	// availability), one cost-model probe per candidate granule, and early
	// exit on provably-empty intermediates. Planning cost is linear in the
	// plan shape; plan quality tracks the DP tiers when selectivity is
	// visible in the query itself.
	ModeGreedy
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeSQO:
		return "sqo"
	case ModeDQO:
		return "dqo"
	case ModeDQOCalibrated:
		return "dqo-calibrated"
	case ModeGreedy:
		return "greedy"
	default:
		return "unknown"
	}
}

func (m Mode) coreMode() (core.Mode, error) {
	switch m {
	case ModeSQO:
		return core.SQO(), nil
	case ModeDQO:
		return core.DQO(), nil
	case ModeDQOCalibrated:
		return core.DQOCalibrated(), nil
	case ModeGreedy:
		return core.Greedy(), nil
	default:
		return core.Mode{}, fmt.Errorf("dqo: unknown mode %d", uint8(m))
	}
}

// DB is an in-memory database: a set of registered tables, an Algorithmic
// View catalog, a plan cache, and the query-lifecycle observability state
// (tracer, metrics, executor counters).
type DB struct {
	mu         sync.RWMutex
	tables     map[string]*storage.Relation
	avs        *av.Catalog
	planCache  *av.PlanCache
	cachePlans bool
	admission  *govern.Gate

	tracer       obs.Tracer     // guarded by mu; nil = tracing off
	metrics      *obs.Collector // internally synchronised
	execCounters exec.Counters  // atomic; ticked per morsel by the executor

	feedback   *feedback.Store // internally synchronised; always non-nil
	feedbackOn bool            // guarded by mu
}

// SetAdmission installs a DB-level admission gate: at most maxActive
// queries execute at once, at most maxQueue more wait for a slot, and
// anything beyond that is rejected immediately with ErrQueueFull. A query
// whose context dies while queued returns ErrCancelled/ErrTimeout without
// ever running. maxActive <= 0 removes the gate (unlimited admission).
func (db *DB) SetAdmission(maxActive, maxQueue int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.admission = govern.NewGate(maxActive, maxQueue)
}

func (db *DB) gate() *govern.Gate {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.admission
}

// defaultTraceRing is how many query traces the DB's default ring tracer
// retains.
const defaultTraceRing = 32

// Open returns an empty database. Tracing starts enabled with the built-in
// ring tracer (last 32 queries; see SetTracer) and metrics collection is
// always on — both record once per query, off the morsel hot path.
func Open() *DB {
	return &DB{
		tables:    make(map[string]*storage.Relation),
		avs:       av.NewCatalog(),
		planCache: av.NewPlanCache(),
		tracer:    obs.NewRingTracer(defaultTraceRing),
		metrics:   obs.NewCollector(),
		feedback:  feedback.NewStore(),
	}
}

// Register adds a table. Re-registering a name replaces the table,
// invalidates cached plans, and drops Algorithmic Views materialised from
// the old data (they would be stale).
func (db *DB) Register(t *Table) error {
	if t == nil || t.rel == nil {
		return fmt.Errorf("dqo: Register of nil table")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	name := t.rel.Name()
	if _, existed := db.tables[name]; existed {
		db.avs.DropTable(name)
	}
	db.tables[name] = t.rel
	db.planCache.Clear()
	return nil
}

// CompressTable re-encodes a table's columns into compressed column
// segments — dictionary-RLE, bit-packing, or frame-of-reference, auto-chosen
// per column by encoded size; columns that would not shrink stay plain. The
// logical contents are unchanged, so every query returns byte-identical
// results, but the optimiser sees the encodings as per-column compression
// properties and may choose direct-on-compressed granules (zone-map segment
// skipping, run-aware filtering) where the cost model favours them. Cached
// plans are invalidated; Algorithmic Views stay valid because row positions
// are unchanged.
func (db *DB) CompressTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("dqo: unknown table %q", name)
	}
	db.tables[name] = rel.Compress()
	db.planCache.Clear()
	return nil
}

// DecompressTable restores a table to plain column storage, decoding any
// compressed segments. Inverse of CompressTable; cached plans are
// invalidated.
func (db *DB) DecompressTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("dqo: unknown table %q", name)
	}
	db.tables[name] = rel.Materialize()
	db.planCache.Clear()
	return nil
}

// DescribeStorage renders the physical storage of a table's columns — the
// dqoshell \storage view: per-column encoding, segment and run counts,
// stored vs plain bytes, compression ratio, and zone-map coverage. An empty
// name describes every registered table.
func (db *DB) DescribeStorage(name string) (string, error) {
	db.mu.RLock()
	var rels []*storage.Relation
	if name == "" {
		for _, n := range sortedKeys(db.tables) {
			rels = append(rels, db.tables[n])
		}
	} else if rel, ok := db.tables[name]; ok {
		rels = append(rels, rel)
	}
	db.mu.RUnlock()
	if len(rels) == 0 {
		if name == "" {
			return "no tables registered\n", nil
		}
		return "", fmt.Errorf("dqo: unknown table %q", name)
	}
	var b strings.Builder
	for i, rel := range rels {
		if i > 0 {
			b.WriteString("\n")
		}
		renderStorage(&b, rel)
	}
	return b.String(), nil
}

// renderStorage writes one table's column-storage report.
func renderStorage(b *strings.Builder, rel *storage.Relation) {
	info := rel.StorageInfo()
	var plain, stored int64
	for _, cs := range info {
		plain += cs.PlainBytes
		stored += cs.StoredBytes
	}
	ratio := 1.0
	if stored > 0 {
		ratio = float64(plain) / float64(stored)
	}
	fmt.Fprintf(b, "table %s (%d rows, %s stored, %.2fx)\n",
		rel.Name(), rel.NumRows(), fmtBytes(stored), ratio)
	fmt.Fprintf(b, "  %-16s %-8s %-8s %9s %9s %12s %7s %6s\n",
		"column", "kind", "encoding", "segments", "runs", "bytes", "ratio", "zones")
	for _, cs := range info {
		segs, runs, zones := "-", "-", "-"
		if cs.Encoding != storage.EncNone {
			segs = fmt.Sprintf("%d", cs.Segments)
			zones = "100%"
			if cs.Encoding == storage.EncDictRLE {
				runs = fmt.Sprintf("%d", cs.Runs)
			}
		}
		fmt.Fprintf(b, "  %-16s %-8s %-8s %9s %9s %12s %6.2fx %6s\n",
			cs.Name, cs.Kind, cs.Encoding, segs, runs, fmtBytes(cs.StoredBytes), cs.Ratio(), zones)
	}
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[string]*storage.Relation) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table returns a registered table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.tables[name]
	if !ok {
		return nil, false
	}
	return &Table{rel: rel}, true
}

// Tables returns the registered table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// EnablePlanCache turns the plan-level Algorithmic View on or off: with it
// enabled, repeated query shapes skip enumeration entirely — the cache is
// keyed on the statement's normalized fingerprint (literals stripped to
// parameter slots) and a hit rebinds the new literals into the cached plan
// (the offline vs query-time trade-off of paper Section 3). Disabling drops
// every entry and zeroes the hit/miss counters, so the exported Prometheus
// hit ratio reflects only periods the cache was live instead of continuing
// to skew from stale counts.
func (db *DB) EnablePlanCache(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.cachePlans = on
	if !on {
		db.planCache.Clear()
		db.planCache.ResetStats()
	}
}

// PlanCacheStats returns plan cache hits and misses.
func (db *DB) PlanCacheStats() (hits, misses int) { return db.planCache.Stats() }

// Coefficients is the shared calibration format: granule family →
// ns-per-cost-unit, written both by runtime feedback harvesting and by
// offline hardware calibration (cost.Measure via `dqobench -calibrate`).
type Coefficients = feedback.Coefficients

// EnableFeedback turns the estimate→measure feedback loop on or off
// (default off). With it enabled, every successful unlimited query's
// execution profile is folded back into the DB's feedback store — measured
// cardinalities per filter/join/group shape and measured ns-per-cost-unit
// per granule family — and the optimiser plans subsequent queries through
// those corrections. An empty store is exactly neutral, so plans are
// unchanged until measurements accumulate. Cached plan templates are
// version-keyed on the store, so material corrections invalidate them
// automatically. Disabling stops both harvesting and consultation but keeps
// the store's contents; use ResetFeedback to drop them.
func (db *DB) EnableFeedback(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.feedbackOn = on
}

// ResetFeedback clears every recorded cardinality correction and cost
// coefficient. The store's version advances, so plan-cache templates built
// against the old corrections are invalidated.
func (db *DB) ResetFeedback() { db.feedback.Reset() }

// SeedFeedback imports calibration coefficients into the feedback store —
// typically the offline hardware calibration `dqobench -calibrate` emits, so
// a fresh DB starts from measured per-family costs instead of waiting for
// runtime feedback to accumulate.
func (db *DB) SeedFeedback(c Coefficients) { db.feedback.SetCoefficients(c) }

// FeedbackCoefficients exports the store's current coefficients in the
// shared calibration format.
func (db *DB) FeedbackCoefficients() Coefficients { return db.feedback.Coefficients() }

// DescribeFeedback renders the feedback store's current corrections — the
// dqoshell \feedback view.
func (db *DB) DescribeFeedback() string {
	state := "off"
	if db.feedbackEnabled() {
		state = "on"
	}
	return fmt.Sprintf("feedback=%s\n%s", state, db.feedback.Snapshot())
}

func (db *DB) feedbackEnabled() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.feedbackOn
}

// catalogView adapts the table map to the SQL binder's catalog interface.
type catalogView struct{ db *DB }

func (c catalogView) Table(name string) (*storage.Relation, bool) {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	rel, ok := c.db.tables[name]
	return rel, ok
}

// planTier names the planning tier a core mode resolves to, for span
// attributes and EXPLAIN ANALYZE headers.
func planTier(cm core.Mode) string {
	switch {
	case cm.Greedy:
		return "greedy"
	case cm.Beam > 0:
		return "beam"
	case cm.Depth == physio.Deep:
		return "deep"
	default:
		return "shallow"
	}
}

// compile parses, binds, and optimises a query, recording the phase
// durations into pt (which may be nil). cfg.workers > 0 overrides the
// degree of parallelism offered to the optimiser's enumeration (0 keeps the
// mode's default); cfg.memLimit > 0 makes the optimiser prune plan
// alternatives whose estimated peak memory exceeds it; cfg.beam > 0 caps
// the DP table to the beam width.
func (db *DB) compile(mode Mode, query string, cfg queryConfig, pt *phaseTimes) (*core.Result, *sql.SelectStmt, error) {
	if pt == nil {
		pt = &phaseTimes{}
	}
	t0 := time.Now()
	stmt := cfg.stmt
	var err error
	if stmt == nil {
		stmt, err = sql.Parse(query)
	}
	pt.parse = time.Since(t0)
	if err != nil {
		return nil, nil, err
	}
	t0 = time.Now()
	node, err := sql.Bind(stmt, catalogView{db})
	pt.bind = time.Since(t0)
	if err != nil {
		return nil, nil, err
	}
	cm, err := mode.coreMode()
	if err != nil {
		return nil, nil, err
	}
	if cfg.workers > 0 {
		cm.DOP = cfg.workers
	}
	if cfg.memLimit > 0 {
		cm.MemBudget = cfg.memLimit
	}
	if cfg.spillDir != "" {
		// With a spill directory armed, over-budget breaker sites enumerate
		// disk-backed twins instead of keeping a plan the runtime budget
		// aborts. No-op without a MemBudget (nothing is ever over budget).
		cm.Spill = true
	}
	if cfg.beam > 0 {
		cm = cm.WithBeam(cfg.beam)
	}
	prov := av.Qualified{Cat: db.avs, Aliases: aliasMap(stmt)}
	cm = cm.WithAVs(prov, prov).WithCracked(prov)

	db.mu.RLock()
	useCache := db.cachePlans || cfg.prepared
	fbOn := db.feedbackOn
	db.mu.RUnlock()
	if fbOn {
		cm.Feedback = db.feedback
		pt.feedback = true
		pt.fbVersion = db.feedback.Version()
	}
	pt.tier = planTier(cm)
	pt.beam = cm.Beam

	t0 = time.Now()
	var res *core.Result
	hit := false
	if useCache {
		// Template cache: the key is the statement's normalized fingerprint
		// (literals stripped to parameter slots), so repeated query shapes
		// hit regardless of their literal values and re-plan by rebinding.
		// The chosen plan depends on the DOP, memory-budget, beam, and
		// spill dimensions, so the key must too: the same shape planned at
		// different worker counts or budgets may pick different granules,
		// and an over-budget shape planned with spilling armed picks the
		// disk-backed twin.
		key := fmt.Sprintf("%s|dop=%d|mem=%d|beam=%d|spill=%t|%s", mode, cm.DOP, cm.MemBudget, cm.Beam, cm.Spill, sql.Fingerprint(stmt))
		if fbOn {
			// Feedback-aware plans embed the store's corrections at insert
			// time; version-keying retires templates the moment the store
			// changes materially, so a cache hit never replays a plan the
			// feedback-aware optimiser would no longer choose.
			key = fmt.Sprintf("%s|fb=%d", key, pt.fbVersion)
		}
		res, hit, err = db.planCache.OptimizeTemplate(key, node, cm)
	} else {
		res, err = core.Optimize(node, cm)
	}
	pt.optimise = time.Since(t0)
	pt.cacheHit = hit
	if err != nil {
		return nil, nil, err
	}
	if !hit {
		// A cache hit rebinds the original enumeration's plan; only fresh
		// optimisation runs add alternatives to the DB counters.
		db.metrics.AddAlternatives(res.Stats.Alternatives)
	}
	return res, stmt, nil
}

// Query optimises and executes a SQL query under the given mode, through
// the morsel-driven execution layer. It is the primary entry point; tune a
// single query with functional options:
//
//	res, err := db.Query(ctx, dqo.ModeDQO, q,
//	    dqo.WithWorkers(4), dqo.WithMemoryLimit(64<<20), dqo.WithTimeout(time.Second))
//
// Cancelling ctx aborts the query at the next morsel boundary; a LIMIT
// clause runs as an early-exit operator. Every failure is typed —
// errors.Is(err, ErrCancelled / ErrTimeout / ErrMemoryBudgetExceeded /
// ErrQueueFull / ErrInternal) discriminates the cause — and when execution
// fails mid-pipeline the returned *Result is non-nil alongside the error,
// carrying the plan and the partial execution profile (Result.Stats,
// Result.Err). The query's lifecycle is recorded: phase timings and the
// operator span tree go to the DB's tracer (Result.Trace, DB.LastTrace) and
// the outcome into DB.Metrics.
func (db *DB) Query(ctx context.Context, mode Mode, query string, opts ...QueryOption) (*Result, error) {
	return db.run(ctx, mode, query, resolveOptions(opts))
}

// run is the single query path behind Query and Stmt.Query: it executes the
// query with per-phase timing and records the outcome (metrics always, the
// span-tree trace when a tracer is installed).
func (db *DB) run(ctx context.Context, mode Mode, query string, cfg queryConfig) (*Result, error) {
	tracer := db.Tracer()
	if cfg.tracerSet {
		tracer = cfg.tracer
	}
	start := time.Now()
	var pt phaseTimes
	res, err := db.execQuery(ctx, mode, query, cfg, &pt)
	db.observe(tracer, mode, query, start, time.Since(start), &pt, res, err)
	return res, err
}

// execQuery runs one query's lifecycle: parse → bind → optimise → compile →
// admission-wait → execute. Admission is taken after compilation — a
// rejected query pays its optimisation cost but never holds an execution
// slot while optimising, so the gate bounds executing queries only.
func (db *DB) execQuery(ctx context.Context, mode Mode, query string, cfg queryConfig, pt *phaseTimes) (*Result, error) {
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, qerr.From(err)
	}
	res, stmt, err := db.compile(mode, query, cfg, pt)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	var rc *core.ReoptConfig
	var root exec.Operator
	if cfg.reopt > 0 {
		rc = &core.ReoptConfig{Mode: res.Mode, Threshold: cfg.reopt}
		root, err = core.CompileReopt(res.Best, rc)
	} else {
		root, err = core.Compile(res.Best)
	}
	pt.compile = time.Since(t0)
	if err != nil {
		return nil, err
	}
	if stmt.Limit >= 0 {
		root = exec.NewLimit(root, stmt.Limit)
	}
	t0 = time.Now()
	release, err := db.gate().Enter(ctx)
	pt.admission = time.Since(t0)
	if err != nil {
		return nil, err
	}
	defer release()
	db.metrics.RecordAdmissionWait(pt.admission)
	var mem *govern.Budget
	if cfg.memLimit > 0 {
		mem = govern.NewBudget(cfg.memLimit)
	}
	ec := exec.NewExecContextBudget(ctx, cfg.morsel, cfg.workers, mem)
	if cfg.spillDir != "" {
		ec.SetSpill(cfg.spillDir, cfg.spillLimit)
	}
	ec.Counters = &db.execCounters
	t0 = time.Now()
	rel, err := exec.Run(ec, root)
	pt.execute = time.Since(t0)
	if err != nil {
		return &Result{plan: res, profile: exec.CollectProfile(root), memPeak: mem.Peak(), err: err, replans: replanEvents(rc)}, err
	}
	rel, err = applyAliases(rel, stmt)
	if err != nil {
		return &Result{plan: res, profile: exec.CollectProfile(root), memPeak: mem.Peak(), err: err, replans: replanEvents(rc)}, err
	}
	prof := exec.CollectProfile(root)
	if db.feedbackEnabled() && stmt.Limit < 0 {
		// Close the loop: fold the measured profile back into the store.
		// LIMIT queries are skipped — early exit truncates every
		// measurement below the limit operator.
		core.HarvestFeedback(db.feedback, res.Best, prof)
	}
	return &Result{rel: rel, plan: res, profile: prof, memPeak: mem.Peak(), replans: replanEvents(rc)}, nil
}

// replanEvents extracts the splice log of a reoptimising run (nil rc = no
// reoptimisation requested).
func replanEvents(rc *core.ReoptConfig) []ReplanEvent {
	if rc == nil {
		return nil
	}
	return rc.Events()
}

// Explain renders the chosen physical plan for a query: operators,
// estimated costs and cardinalities, and property vectors. Verbosity is
// additive via options — ExplainGranules appends each join/group's granule
// tree, ExplainUnnesting the Figure 3 unnesting chains, and ExplainAnalyze
// executes the query and appends the estimated-vs-measured operator table
// (tune that run with ExplainWith). Without options only the plan is
// rendered and nothing executes.
func (db *DB) Explain(mode Mode, query string, opts ...ExplainOption) (string, error) {
	var cfg explainConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	var pt phaseTimes
	res, _, err := db.compile(mode, query, resolveOptions(cfg.qopts), &pt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s model=%s tier=%s", res.Mode.Name, res.Mode.Model.Name(), pt.tier)
	if pt.beam > 0 {
		fmt.Fprintf(&b, " beam=%d", pt.beam)
	}
	if pt.cacheHit {
		b.WriteString(" plan-cache=hit")
	}
	if pt.feedback {
		fmt.Fprintf(&b, " feedback=v%d", pt.fbVersion)
	}
	fmt.Fprintf(&b, " alternatives=%d kept=%d physicality=%.2f time=%s\n",
		res.Stats.Alternatives, res.Stats.Kept,
		res.Physicality(), res.Stats.Duration)
	b.WriteString(res.Best.Explain())
	if cfg.granules {
		b.WriteString(granuleTrees(res.Best))
	}
	if cfg.unnesting {
		b.WriteString(unnestChains(res.Best))
	}
	if cfg.analyze {
		qres, err := db.run(context.Background(), mode, query, resolveOptions(cfg.qopts))
		if err != nil {
			return "", err
		}
		b.WriteString("\n")
		b.WriteString(analyzeReport(mode, qres))
	}
	return b.String(), nil
}

// granuleTrees renders the granule tree of every join/group node, bottom-up.
func granuleTrees(plan *core.Plan) string {
	var b strings.Builder
	var rec func(n *core.Plan)
	rec = func(n *core.Plan) {
		for _, c := range n.Children {
			rec(c)
		}
		var tree *physio.Granule
		switch n.Op {
		case core.OpJoin:
			tree = n.Join.Tree
		case core.OpGroup:
			tree = n.Group.Tree
		}
		if tree != nil {
			fmt.Fprintf(&b, "\n%s granule tree (physicality %.2f):\n%s", n.Label(), tree.Physicality(), tree.Render())
		}
	}
	rec(plan)
	return b.String()
}

// unnestChains renders the unnesting steps of every join/group node.
func unnestChains(plan *core.Plan) string {
	var b strings.Builder
	var rec func(p *core.Plan)
	rec = func(p *core.Plan) {
		for _, c := range p.Children {
			rec(c)
		}
		var steps []*physio.Granule
		switch p.Op {
		case core.OpGroup:
			steps = physio.UnnestSteps(p.Group, p.GroupKey)
		case core.OpJoin:
			steps = physio.UnnestJoinSteps(p.Join, p.LeftKey, p.RightKey)
		default:
			return
		}
		fmt.Fprintf(&b, "== unnesting %s ==\n", p.Label())
		for i, s := range steps {
			fmt.Fprintf(&b, "step %d (physicality %.2f):\n%s\n", i, s.Physicality(), s.Render())
		}
	}
	rec(plan)
	return b.String()
}

// applyAliases renames result columns according to SELECT ... AS aliases on
// plain columns (aggregate aliases are applied during planning). Clashing
// aliases are rejected at bind time, so a rename failure here is an
// internal inconsistency, not a silent fallback.
func applyAliases(rel *storage.Relation, stmt *sql.SelectStmt) (*storage.Relation, error) {
	renames := map[string]string{}
	for _, it := range stmt.Items {
		if it.Agg == nil && it.Alias != "" {
			// The bound plan uses qualified names; try both spellings.
			renames[it.Col] = it.Alias
		}
	}
	if len(renames) == 0 {
		return rel, nil
	}
	cols := make([]*storage.Column, 0, rel.NumCols())
	for _, c := range rel.Columns() {
		name := c.Name()
		if alias, ok := renames[name]; ok {
			cols = append(cols, c.Rename(alias))
			continue
		}
		// Bare reference in SELECT, qualified in the plan.
		matched := false
		for ref, alias := range renames {
			if suffixAfterDot(name) == ref {
				cols = append(cols, c.Rename(alias))
				matched = true
				break
			}
		}
		if !matched {
			cols = append(cols, c)
		}
	}
	out, err := storage.NewRelation(rel.Name(), cols...)
	if err != nil {
		return nil, fmt.Errorf("dqo: applying SELECT aliases: %w", err)
	}
	return out, nil
}

// aliasMap collects the alias -> base-table mapping of a statement, used to
// resolve Algorithmic Views against aliased, qualified plans.
func aliasMap(stmt *sql.SelectStmt) map[string]string {
	m := map[string]string{stmt.From.Name(): stmt.From.Table}
	for _, j := range stmt.Joins {
		m[j.Table.Name()] = j.Table.Table
	}
	return m
}

func suffixAfterDot(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// MaterializeAV materialises an Algorithmic View of the given kind on
// table.column and registers it with the optimiser: AVSorted is a sorted
// projection (prepaid sort), AVHashIndex a prebuilt hash-join build side,
// AVSPH a static-perfect-hash directory over a dense key, and AVCracked an
// adaptive index that partitions itself along query bounds. Materialising
// invalidates cached plans so subsequent queries can choose the view.
func (db *DB) MaterializeAV(kind AVKind, table, column string) error {
	rel, ok := db.lookup(table)
	if !ok {
		return fmt.Errorf("dqo: unknown table %q", table)
	}
	var v *av.View
	var err error
	switch kind {
	case AVSorted:
		v, err = av.MaterializeSorted(table, rel, column)
	case AVHashIndex:
		v, err = av.MaterializeHashIndex(table, rel, column, hashtable.Murmur3Fin)
	case AVSPH:
		v, err = av.MaterializeSPH(table, rel, column)
	case AVCracked:
		v, err = av.MaterializeCracked(table, rel, column)
	default:
		return fmt.Errorf("dqo: unknown AV kind %d", uint8(kind))
	}
	if err != nil {
		return err
	}
	db.avs.Add(v)
	db.planCache.Clear()
	return nil
}

// DescribeAVs renders the AV catalog.
func (db *DB) DescribeAVs() string { return db.avs.String() }

// DropAVs removes every materialised AV.
func (db *DB) DropAVs() {
	db.avs = av.NewCatalog()
	db.planCache.Clear()
}

// SelectAVs solves the Algorithmic View Selection Problem for a workload of
// (query, frequency) pairs under a byte budget, using submodular greedy
// selection, and installs the chosen views. It returns a human-readable
// report.
func (db *DB) SelectAVs(mode Mode, workload map[string]float64, budgetBytes int64) (string, error) {
	cm, err := mode.coreMode()
	if err != nil {
		return "", err
	}
	var queries []av.WorkloadQuery
	for q, freq := range workload {
		stmt, err := sql.Parse(q)
		if err != nil {
			return "", fmt.Errorf("dqo: workload query %q: %w", q, err)
		}
		node, err := sql.Bind(stmt, catalogView{db})
		if err != nil {
			return "", fmt.Errorf("dqo: workload query %q: %w", q, err)
		}
		queries = append(queries, av.WorkloadQuery{Name: q, Plan: node, Freq: freq, Aliases: aliasMap(stmt)})
	}
	db.mu.RLock()
	tables := make(map[string]*storage.Relation, len(db.tables))
	for n, r := range db.tables {
		tables[n] = r
	}
	db.mu.RUnlock()

	cands, err := av.EnumerateCandidates(tables, queries)
	if err != nil {
		return "", err
	}
	sel, err := av.SelectGreedy(cands, queries, cm, budgetBytes)
	if err != nil {
		return "", err
	}
	for _, v := range sel.Views {
		db.avs.Add(v)
	}
	db.planCache.Clear()
	return sel.String(), nil
}

func (db *DB) lookup(table string) (*storage.Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.tables[table]
	return rel, ok
}

// bindForTest exposes parse+bind for the root test suite and benchmarks.
func (db *DB) bind(query string) (logical.Node, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return sql.Bind(stmt, catalogView{db})
}
