package dqo

import (
	"context"
	"strings"
	"testing"

	"dqo/internal/storage"
)

// skewDB extends the corpus DB with a table whose filter selectivity the
// heuristic estimator gets badly wrong: `v < 2` over uniform v is estimated
// at 1000 rows but keeps 2. Every feedback and re-planning scenario in this
// file turns on that misestimate.
func skewDB(t testing.TB) *DB {
	t.Helper()
	db := corpusDB(t)
	n := 3000
	ks := make([]uint32, n)
	vs := make([]uint32, n)
	for i := 0; i < n; i++ {
		ks[i] = uint32(i % 16)
		vs[i] = uint32(i)
	}
	tab := NewTableBuilder("skew").Uint32("k", ks).Uint32("v", vs).MustBuild()
	if err := db.Register(tab); err != nil {
		t.Fatal(err)
	}
	return db
}

const skewSQL = "SELECT k, COUNT(*) FROM skew WHERE v < 2 GROUP BY k"

// orderedRows renders a relation's rows in their emitted order, for the
// byte-identical comparison ORDER BY queries demand.
func orderedRows(rel *storage.Relation) []string {
	out := make([]string, rel.NumRows())
	for i := range out {
		parts := make([]string, rel.NumCols())
		for j, v := range rel.Row(i) {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// TestReoptimizeDifferential runs the full corpus (plus the skewed queries
// that actually trigger splices) with re-planning on and off, across the
// DOP and morsel-size sweep. Ordered queries must match byte for byte;
// unordered queries as multisets — a spliced kernel may emit another of the
// equally valid row orders SQL leaves unspecified.
func TestReoptimizeDifferential(t *testing.T) {
	db := skewDB(t)
	queries := append([]string{}, corpusQueries...)
	queries = append(queries,
		skewSQL,
		skewSQL+" ORDER BY k",
		"SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID WHERE R.A < 3 GROUP BY R.A",
	)
	ctx := context.Background()
	for _, mode := range []Mode{ModeDQO, ModeGreedy} {
		for _, q := range queries {
			for _, workers := range workerCounts() {
				for _, morsel := range []int{1, 7, 1024} {
					off, err := db.Query(ctx, mode, q,
						WithWorkers(workers), WithMorselSize(morsel))
					if err != nil {
						t.Fatalf("%s/%s w=%d m=%d: off: %v", mode, q, workers, morsel, err)
					}
					on, err := db.Query(ctx, mode, q,
						WithWorkers(workers), WithMorselSize(morsel), WithReoptimize(0))
					if err != nil {
						t.Fatalf("%s/%s w=%d m=%d: on: %v", mode, q, workers, morsel, err)
					}
					if strings.Contains(q, "ORDER BY") {
						a, b := orderedRows(off.rel), orderedRows(on.rel)
						if !sameRows(a, b) {
							t.Errorf("%s/%s w=%d m=%d: ordered results diverge\noff: %v\non:  %v",
								mode, q, workers, morsel, a, b)
						}
					} else if !sameRows(canonicalRows(off.rel), canonicalRows(on.rel)) {
						t.Errorf("%s/%s w=%d m=%d: result multisets diverge\noff: %v\non:  %v",
							mode, q, workers, morsel, canonicalRows(off.rel), canonicalRows(on.rel))
					}
					if len(off.Replans()) != 0 {
						t.Errorf("%s/%s: replans recorded without WithReoptimize", mode, q)
					}
				}
			}
		}
	}
}

// TestReplanEventsSurface checks the API surface of one triggering query:
// the splice appears on Result.Replans with sane cardinalities, the
// operator's Stats row counts it, and the default threshold engages via
// WithReoptimize(0).
func TestReplanEventsSurface(t *testing.T) {
	db := skewDB(t)
	res, err := db.Query(context.Background(), ModeDQO, skewSQL,
		WithWorkers(1), WithReoptimize(0))
	if err != nil {
		t.Fatal(err)
	}
	evs := res.Replans()
	if len(evs) == 0 {
		t.Fatalf("misestimated query produced no replan events\nplan:\n%s", res.PlanExplain())
	}
	ev := evs[0]
	if ev.EstRows < 100 || ev.ActRows > 10 {
		t.Errorf("event est=%v act=%v, want est >> act", ev.EstRows, ev.ActRows)
	}
	if ev.Operator == "" || ev.To == "" {
		t.Errorf("incomplete event %+v", ev)
	}
	var counted int64
	for _, s := range res.Stats() {
		counted += s.Replans
	}
	if counted != int64(len(evs)) {
		t.Errorf("Stats count %d replans, Replans() has %d", counted, len(evs))
	}

	// Without the option the same query records nothing.
	plain, err := db.Query(context.Background(), ModeDQO, skewSQL, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Replans()) != 0 {
		t.Error("replans recorded without WithReoptimize")
	}
}

// TestExplainAnalyzeReplanned: EXPLAIN ANALYZE over a re-optimised run marks
// the switched operator and appends the splice log.
func TestExplainAnalyzeReplanned(t *testing.T) {
	db := skewDB(t)
	out, err := db.Explain(ModeDQO, skewSQL, ExplainAnalyze(),
		ExplainWith(WithWorkers(1), WithReoptimize(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[replanned]") {
		t.Errorf("analyze output lacks the [replanned] marker:\n%s", out)
	}
	if !strings.Contains(out, "replanned:") {
		t.Errorf("analyze output lacks the splice log:\n%s", out)
	}

	// Without re-optimisation the marker must not appear (golden safety).
	plain, err := db.Explain(ModeDQO, skewSQL, ExplainAnalyze(), ExplainWith(WithWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "replanned") {
		t.Errorf("plain analyze output mentions replanning:\n%s", plain)
	}
}

// TestFeedbackWarmPlanSwitch closes the loop through the public API: with
// feedback enabled, executing the skewed query once teaches the store its
// true cardinality, and the next optimisation switches to the plan the
// truth makes cheaper — which the DP's minimality guarantees. Results stay
// identical, and EXPLAIN announces the feedback version it planned under.
func TestFeedbackWarmPlanSwitch(t *testing.T) {
	db := skewDB(t)
	db.EnableFeedback(true)
	ctx := context.Background()

	cold, err := db.Explain(ModeDQO, skewSQL, ExplainWith(WithWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold, "feedback=v") {
		t.Errorf("EXPLAIN under feedback lacks the version tag:\n%s", cold)
	}

	coldRes, err := db.Query(ctx, ModeDQO, skewSQL, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}

	warm, err := db.Explain(ModeDQO, skewSQL, ExplainWith(WithWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	coldPlan := cold[strings.Index(cold, "\n")+1:]
	warmPlan := warm[strings.Index(warm, "\n")+1:]
	if coldPlan == warmPlan {
		t.Fatalf("warmed optimiser kept the cold plan:\n%s", warmPlan)
	}

	warmRes, err := db.Query(ctx, ModeDQO, skewSQL, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(canonicalRows(coldRes.rel), canonicalRows(warmRes.rel)) {
		t.Error("warmed plan changed the query result")
	}

	// The store is inspectable and resettable.
	if desc := db.DescribeFeedback(); !strings.Contains(desc, "feedback=on") ||
		!strings.Contains(desc, "cardinality corrections") {
		t.Errorf("DescribeFeedback() = %q", desc)
	}
	db.ResetFeedback()
	if desc := db.DescribeFeedback(); !strings.Contains(desc, "(empty)") {
		t.Errorf("DescribeFeedback() after reset = %q", desc)
	}
	reset, err := db.Explain(ModeDQO, skewSQL, ExplainWith(WithWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := reset[strings.Index(reset, "\n")+1:]; got != coldPlan {
		t.Errorf("reset store did not restore the cold plan:\n%s", got)
	}
}

// TestFeedbackDisabledIsInert: with feedback off (the default), executing
// queries neither populates the store nor changes plans, and EXPLAIN stays
// silent about it.
func TestFeedbackDisabledIsInert(t *testing.T) {
	db := skewDB(t)
	cold, err := db.Explain(ModeDQO, skewSQL, ExplainWith(WithWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cold, "feedback=") {
		t.Errorf("EXPLAIN mentions feedback while disabled:\n%s", cold)
	}
	if _, err := db.Query(context.Background(), ModeDQO, skewSQL, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if c := db.FeedbackCoefficients(); len(c) != 0 {
		t.Errorf("disabled feedback still harvested coefficients: %v", c)
	}
	after, err := db.Explain(ModeDQO, skewSQL, ExplainWith(WithWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	// The header embeds the optimisation wall time; compare the plan body.
	if got, want := after[strings.Index(after, "\n")+1:], cold[strings.Index(cold, "\n")+1:]; got != want {
		t.Error("plan changed with feedback disabled")
	}
}

// TestPlanCacheFeedbackStaleness is the staleness regression the version
// key exists for: once the store learns the truth, the cached cold template
// must not be replayed — the next compile misses and re-optimises into
// exactly the plan a cache-free feedback-aware optimiser would choose.
func TestPlanCacheFeedbackStaleness(t *testing.T) {
	db := skewDB(t)
	db.EnablePlanCache(true)
	db.EnableFeedback(true)
	cfg := queryConfig{workers: 1}

	cold, _, err := db.compile(ModeDQO, skewSQL, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldPlan := cold.Best.Explain()

	// Same store version: the template is valid and must hit.
	again, _, err := db.compile(ModeDQO, skewSQL, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Best.Explain() != coldPlan {
		t.Error("cache hit at an unchanged store version returned a different plan")
	}
	hits0, _ := db.PlanCacheStats()
	if hits0 == 0 {
		t.Error("second compile at the same feedback version did not hit the cache")
	}

	// Execute once: the harvest teaches the store the true cardinality and
	// bumps its version, retiring the cold template.
	if _, err := db.Query(context.Background(), ModeDQO, skewSQL, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}

	warm, _, err := db.compile(ModeDQO, skewSQL, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Best.Explain() == coldPlan {
		t.Fatalf("cache replayed the stale cold plan after the store changed:\n%s", coldPlan)
	}

	// The version-keyed miss must re-optimise into exactly the plan a
	// cache-free compile chooses right now.
	db.EnablePlanCache(false)
	fresh, _, err := db.compile(ModeDQO, skewSQL, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Best.Explain() != fresh.Best.Explain() {
		t.Errorf("cached feedback-aware plan differs from a fresh optimisation:\n--- cached ---\n%s--- fresh ---\n%s",
			warm.Best.Explain(), fresh.Best.Explain())
	}
}

// TestSeedFeedbackCoefficients: offline calibration output (the shared
// Coefficients format) imports into the store and round-trips.
func TestSeedFeedbackCoefficients(t *testing.T) {
	db := skewDB(t)
	db.EnableFeedback(true)
	db.SeedFeedback(Coefficients{"*": 10, "join:HJ": 25})
	c := db.FeedbackCoefficients()
	if c["*"] != 10 || c["join:HJ"] != 25 {
		t.Errorf("seeded coefficients did not round-trip: %v", c)
	}
	if desc := db.DescribeFeedback(); !strings.Contains(desc, "join:HJ") {
		t.Errorf("DescribeFeedback() = %q", desc)
	}
}
