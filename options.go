package dqo

import (
	"time"

	"dqo/internal/core"
	"dqo/internal/obs"
	"dqo/internal/sql"
)

// QueryOption tunes optimisation and execution of one query; pass options
// to DB.Query (and, via ExplainWith, to the EXPLAIN ANALYZE execution).
type QueryOption func(*queryConfig)

// queryConfig is the resolved option set of one query.
type queryConfig struct {
	workers    int
	morsel     int
	memLimit   int64
	beam       int
	reopt      float64 // misestimation factor triggering mid-query re-planning (0 = off)
	timeout    time.Duration
	tracer     obs.Tracer
	tracerSet  bool   // distinguishes WithTracer(nil) from "use the DB tracer"
	spillDir   string // spill-to-disk parent directory ("" = spilling off)
	spillLimit int64  // cap on live spill bytes (<= 0 = unlimited)

	// Prepared-statement path: stmt is the pre-parsed (and argument-bound)
	// statement, so compile skips the parse phase; prepared routes the plan
	// through the template cache even when the DB-level cache is off — a
	// prepared statement's whole point is planning once per shape.
	stmt     *sql.SelectStmt
	prepared bool
}

func resolveOptions(opts []QueryOption) queryConfig {
	var cfg queryConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithWorkers bounds the query's worker pool AND the degree of parallelism
// the optimiser enumerates plans at; <= 0 selects GOMAXPROCS. Workers=1
// plans and executes fully serially.
func WithWorkers(n int) QueryOption {
	return func(c *queryConfig) { c.workers = n }
}

// WithMorselSize sets the execution batch row count; <= 0 selects
// the executor default (4096 rows).
func WithMorselSize(rows int) QueryOption {
	return func(c *queryConfig) { c.morsel = rows }
}

// WithMemoryLimit caps the query's working memory in bytes. The optimiser
// prunes plan alternatives whose estimated footprint exceeds the limit
// (hash aggregation degrades to sort-based, parallel kernels to serial),
// and at run time materialising operators reserve against a budget that
// fails the query with ErrMemoryBudgetExceeded rather than allocating past
// the limit. <= 0 means unlimited — plans are byte-identical to a query
// without the option.
func WithMemoryLimit(bytes int64) QueryOption {
	return func(c *queryConfig) { c.memLimit = bytes }
}

// WithSpillDir arms spill-to-disk execution for queries that outgrow their
// WithMemoryLimit budget: instead of pruning to a plan the runtime budget
// aborts, the optimiser enumerates disk-backed twins of the breaker kernels
// (external merge sort, grace hash join, spilling hash aggregation) whose
// run files live in a temp directory created under dir ("" falls back to
// the OS temp directory at query time via WithSpillDir(os.TempDir()) —
// passing the empty string leaves spilling off). Results are byte-identical
// to the unlimited in-memory run; any plan that fits the budget is chosen
// exactly as without the option. The directory and every run file are
// removed when the query ends, however it ends.
func WithSpillDir(dir string) QueryOption {
	return func(c *queryConfig) { c.spillDir = dir }
}

// WithSpillLimit caps the query's live spill-file bytes on disk; past the
// cap, spill writes fail the query with ErrSpillLimitExceeded. <= 0 is
// unlimited. It has no effect unless WithSpillDir armed spilling.
func WithSpillLimit(bytes int64) QueryOption {
	return func(c *queryConfig) { c.spillLimit = bytes }
}

// WithBeam caps the optimiser's DP table at the k cheapest
// property-distinct partial plans per site — the beam-capped Deep planning
// tier. Enumeration cost becomes tunable instead of exponential in the plan
// shape; a too-narrow beam can prune the partial plan a later operator
// would have exploited (an interesting order, a dense domain), trading plan
// quality for planning time. <= 0 leaves enumeration exact: plans are
// byte-identical to a query without the option. The knob applies to the DP
// tiers; ModeGreedy does not enumerate and ignores it.
func WithBeam(k int) QueryOption {
	return func(c *queryConfig) { c.beam = k }
}

// WithReoptimize enables mid-query re-planning at pipeline-breaker
// boundaries: when a breaker (hash build, sort, aggregation input)
// materialises its input and the actual cardinality is at least factor× off
// the optimiser's estimate in either direction, the remaining plan suffix is
// re-enumerated with the true cardinality under the active planning tier and
// spliced into the running query. Switches are recorded on Result.Replans,
// counted per operator in Stats, and marked "[replanned]" in EXPLAIN
// ANALYZE. Results are bit-identical to running without the option (row
// order of unordered queries aside, which SQL leaves unspecified). factor
// <= 1 selects the default threshold of 10×.
func WithReoptimize(factor float64) QueryOption {
	return func(c *queryConfig) {
		if factor <= 1 {
			factor = core.DefaultReoptThreshold
		}
		c.reopt = factor
	}
}

// WithTimeout bounds the query's wall-clock time; on expiry the query
// aborts at the next morsel boundary with ErrTimeout. <= 0 means no
// deadline.
func WithTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.timeout = d }
}

// WithTracer routes this query's trace to t instead of the DB's tracer;
// WithTracer(nil) disables tracing for this query only.
func WithTracer(t Tracer) QueryOption {
	return func(c *queryConfig) { c.tracer = t; c.tracerSet = true }
}

// ExplainOption selects what DB.Explain renders. Options are additive:
// Explain(mode, q, ExplainGranules(), ExplainAnalyze()) emits the plan,
// the granule trees, and the measured-vs-estimated table.
type ExplainOption func(*explainConfig)

type explainConfig struct {
	granules  bool
	unnesting bool
	analyze   bool
	qopts     []QueryOption
}

// ExplainPlan requests the default verbosity — the chosen physical plan
// with estimated costs, cardinalities, and property vectors. It is implied;
// the option exists so call sites can state the default explicitly.
func ExplainPlan() ExplainOption {
	return func(c *explainConfig) {}
}

// ExplainGranules adds the granule tree (the paper's Figure 3 view) of
// every chosen join and grouping implementation.
func ExplainGranules() ExplainOption {
	return func(c *explainConfig) { c.granules = true }
}

// ExplainUnnesting adds the step-by-step unnesting chain from each logical
// operator to its fully resolved deep implementation, with the physicality
// measure at every step.
func ExplainUnnesting() ExplainOption {
	return func(c *explainConfig) { c.unnesting = true }
}

// ExplainAnalyze executes the query and appends a per-operator table of the
// optimiser's estimates next to the executor's measurements (rows, self
// time, peak bytes) with misestimation factors — the calibration-gap view
// of one query.
func ExplainAnalyze() ExplainOption {
	return func(c *explainConfig) { c.analyze = true }
}

// ExplainWith forwards query options (workers, morsel size, memory limit,
// timeout, tracer) to the execution run behind ExplainAnalyze. It has no
// effect without ExplainAnalyze.
func ExplainWith(opts ...QueryOption) ExplainOption {
	return func(c *explainConfig) { c.qopts = append(c.qopts, opts...) }
}

// AVKind identifies a kind of Algorithmic View for DB.MaterializeAV.
type AVKind uint8

// Algorithmic View kinds.
const (
	// AVSorted is a sorted projection of one column (prepaid sort).
	AVSorted AVKind = iota
	// AVHashIndex is a prebuilt hash-join build side.
	AVHashIndex
	// AVSPH is a prebuilt static-perfect-hash directory over a dense key.
	AVSPH
	// AVCracked is an adaptive index that partitions itself along query
	// bounds — indexing work happens at query time, driven by the workload.
	AVCracked
)

// String returns the kind name.
func (k AVKind) String() string {
	switch k {
	case AVSorted:
		return "sorted"
	case AVHashIndex:
		return "hash-index"
	case AVSPH:
		return "sph"
	case AVCracked:
		return "cracked"
	default:
		return "unknown"
	}
}
