// grouping_lab runs the paper's Figure 4 experiment in miniature: all five
// grouping implementations (where applicable) across the four
// sortedness x density datasets, with runtimes and a shape report.
//
// Flags: -n sets the dataset size (default 5,000,000; the paper uses 100M —
// run cmd/dqobench for the full-scale sweep).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dqo/internal/benchkit"
)

func main() {
	n := flag.Int("n", 5_000_000, "rows per dataset")
	flag.Parse()

	cfg := benchkit.Figure4Config{
		N:      *n,
		Groups: []int{10, 1000, 20000},
		Seed:   42,
		Zoom:   true,
	}
	rows, err := benchkit.RunFigure4(cfg, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nshape checks (the paper's qualitative claims):")
	for _, line := range benchkit.CheckFigure4Shape(rows) {
		fmt.Println(" ", line)
	}
	fmt.Println("\nTakeaway: no single grouping algorithm wins everywhere — which")
	fmt.Println("algorithm is best depends on data properties (sortedness, density,")
	fmt.Println("group count). That is exactly the optimisation space DQO navigates.")
}
