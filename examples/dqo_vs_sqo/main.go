// dqo_vs_sqo reproduces Section 4.3 interactively: the query
//
//	SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A
//
// is optimised under the shallow (SQO) and deep (DQO) optimiser for every
// cell of the paper's Figure 5 grid, showing the chosen plans, the
// improvement factors, and — because estimates are cheap talk — the
// measured execution times of both winners.
package main

import (
	"log"
	"os"

	"dqo/internal/benchkit"
)

func main() {
	cfg := benchkit.DefaultFigure5()
	cfg.Execute = true // run the winning plans, not just cost them
	if _, err := benchkit.RunFigure5(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
