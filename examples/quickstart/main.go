// Quickstart: build two small tables, run the paper's query, and look at
// what the deep optimiser chose and why.
package main

import (
	"context"
	"fmt"
	"log"

	"dqo"
)

func main() {
	db := dqo.Open()

	// A tiny dimension table R(ID, A): dense primary key, A = region id.
	// The rows arrive unsorted — exactly the case where shallow optimisers
	// fall back to hash everything.
	ids := []uint32{3, 0, 5, 1, 4, 2, 7, 6}
	regions := []uint32{1, 0, 2, 0, 2, 1, 3, 3}
	r := dqo.NewTableBuilder("R").Uint32("ID", ids).Uint32("A", regions).MustBuild()
	if err := db.Register(r); err != nil {
		log.Fatal(err)
	}

	// A fact table S(R_ID, M) with a foreign key into R.
	fks := []uint32{0, 1, 1, 2, 3, 3, 3, 4, 5, 6, 7, 7}
	ms := []int64{10, 20, 21, 30, 40, 41, 42, 50, 60, 70, 80, 81}
	s := dqo.NewTableBuilder("S").Uint32("R_ID", fks).Int64("M", ms).MustBuild()
	if err := db.Register(s); err != nil {
		log.Fatal(err)
	}

	const query = `SELECT R.A, COUNT(*), SUM(S.M) AS total
		FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A ORDER BY R.A`

	res, err := db.Query(context.Background(), dqo.ModeDQO, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:")
	fmt.Println(res)

	fmt.Println("what the deep optimiser chose (note SPHJ/SPHG: R.ID and R.A are dense):")
	plan, err := db.Explain(dqo.ModeDQO, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	fmt.Println("the same query under the shallow optimiser:")
	plan, err = db.Explain(dqo.ModeSQO, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
}
