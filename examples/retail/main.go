// retail is a small star-schema walkthrough with realistic column types:
// a sales fact table joined to a dictionary-encoded store dimension,
// grouped, filtered with HAVING, and accelerated with Algorithmic Views.
// It shows the paper's observation in action: dictionary codes are dense,
// so string keys are natural SPH candidates.
package main

import (
	"context"
	"fmt"
	"log"

	"dqo"
	"dqo/internal/xrand"
)

func main() {
	db := dqo.Open()

	// Store dimension: 12 stores across 4 regions. The region name is a
	// monotone function of the store id, so we can declare the correlation.
	regions := []string{"north", "east", "south", "west"}
	nStores := 12
	storeIDs := make([]uint32, nStores)
	storeRegions := make([]string, nStores)
	for i := 0; i < nStores; i++ {
		storeIDs[i] = uint32(i)
		storeRegions[i] = regions[i/3]
	}
	stores := dqo.NewTableBuilder("stores").
		Uint32("store_id", storeIDs).
		String("region", storeRegions).
		MustBuild()
	must(db.Register(stores))

	// Sales fact table: 200,000 receipts, store FK plus an amount.
	const nSales = 200000
	r := xrand.New(2026)
	saleStores := make([]uint32, nSales)
	amounts := make([]int64, nSales)
	for i := range saleStores {
		saleStores[i] = uint32(r.Uint64n(uint64(nStores)))
		amounts[i] = int64(r.Uint64n(9000)) + 100 // cents
	}
	sales := dqo.NewTableBuilder("sales").
		Uint32("store_id", saleStores).
		Int64("amount", amounts).
		MustBuild()
	must(db.Register(sales))

	const revenueByStore = `
		SELECT stores.store_id, COUNT(*) AS receipts, SUM(amount) AS revenue, AVG(amount) AS avg_ticket
		FROM stores JOIN sales ON stores.store_id = sales.store_id
		GROUP BY stores.store_id
		HAVING revenue > 800000
		ORDER BY stores.store_id`

	fmt.Println("== revenue per store (HAVING revenue > 8000.00) ==")
	res, err := db.Query(context.Background(), dqo.ModeDQO, revenueByStore)
	must(err)
	fmt.Println(res)

	fmt.Println("== the deep plan: store_id is dense, so everything goes SPH ==")
	plan, err := db.Explain(dqo.ModeDQO, revenueByStore)
	must(err)
	fmt.Println(plan)

	// Grouping directly on the dictionary-encoded string column: its codes
	// are dense by construction, so SPHG applies with zero ceremony.
	const revenueByRegion = `
		SELECT region, SUM(amount) AS revenue
		FROM stores JOIN sales ON stores.store_id = sales.store_id
		GROUP BY region ORDER BY region`
	fmt.Println("== revenue per region (grouping on a string column) ==")
	res, err = db.Query(context.Background(), dqo.ModeDQO, revenueByRegion)
	must(err)
	fmt.Println(res)

	// Nightly workload? Let AVSP decide what to materialise and keep plans
	// cached.
	report, err := db.SelectAVs(dqo.ModeDQO, map[string]float64{
		revenueByStore:  50,
		revenueByRegion: 20,
	}, 8<<20)
	must(err)
	fmt.Println("== AVSP selection for the nightly workload ==")
	fmt.Println(report)
	db.EnablePlanCache(true)
	for i := 0; i < 3; i++ {
		_, err = db.Query(context.Background(), dqo.ModeDQO, revenueByStore)
		must(err)
	}
	hits, misses := db.PlanCacheStats()
	fmt.Printf("\nplan cache after 3 repeats: %d hits, %d misses\n", hits, misses)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
