// av_selection demonstrates Algorithmic Views end to end through the public
// API: a repeated analytical workload first runs cold, then the AVSP solver
// picks views to materialise under a budget, and the same workload runs
// again — cheaper plans, and (with the plan cache) near-zero optimisation
// time.
package main

import (
	"context"
	"fmt"
	"log"

	"dqo"
	"dqo/internal/datagen"
)

func main() {
	db := dqo.Open()

	// Unsorted dense tables: the worst case for shallow plans, the best
	// case for AVs.
	cfg := datagen.FKConfig{RRows: 20000, SRows: 90000, AGroups: 2000, Dense: true}
	r, s := datagen.FKPair(42, cfg)
	rt := dqo.NewTableBuilder("R").
		Uint32("ID", r.MustColumn("ID").Uint32s()).
		Uint32("A", r.MustColumn("A").Uint32s()).
		MustBuild()
	st := dqo.NewTableBuilder("S").
		Uint32("R_ID", s.MustColumn("R_ID").Uint32s()).
		Int64("M", s.MustColumn("M").Int64s()).
		MustBuild()
	must(db.Register(rt))
	must(db.Register(st))

	workload := map[string]float64{
		"SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A": 10,
		"SELECT R.A, SUM(S.M) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A": 3,
	}

	fmt.Println("== cold: no Algorithmic Views ==")
	for q := range workload {
		res, err := db.Query(context.Background(), dqo.ModeDQO, q)
		must(err)
		fmt.Printf("cost %8.0f  %s\n", res.EstimatedCost(), q)
	}

	fmt.Println("\n== AVSP: choosing views for the workload under a 4 MiB budget ==")
	report, err := db.SelectAVs(dqo.ModeDQO, workload, 4<<20)
	must(err)
	fmt.Println(report)
	fmt.Println()
	fmt.Println(db.DescribeAVs())

	fmt.Println("\n== warm: with the selected views (and the plan cache on) ==")
	db.EnablePlanCache(true)
	for q := range workload {
		res, err := db.Query(context.Background(), dqo.ModeDQO, q)
		must(err)
		fmt.Printf("cost %8.0f  %s\n", res.EstimatedCost(), q)
	}
	// Run the workload again: plans now come from the cache.
	for q := range workload {
		_, err := db.Query(context.Background(), dqo.ModeDQO, q)
		must(err)
	}
	hits, misses := db.PlanCacheStats()
	fmt.Printf("\nplan cache: %d hits, %d misses — repeated queries skip enumeration entirely\n", hits, misses)

	fmt.Println("\nsample plan with AVs installed:")
	plan, err := db.Explain(dqo.ModeDQO, "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A")
	must(err)
	fmt.Println(plan)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
