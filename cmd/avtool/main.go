// Command avtool demonstrates the Algorithmic View Selection Problem
// (AVSP, paper Section 3): given a workload over the demo schema and a byte
// budget, it enumerates candidate AVs, rates their standalone benefits,
// solves AVSP greedily and exhaustively, and reports what the selection
// does to the workload's plan costs.
//
// Usage:
//
//	avtool [-budget 4194304] [-rrows 20000] [-srows 90000] [-dense=true] [-sorted=false] [-run]
//
// With -run, the workload's hottest query is re-optimised with the selected
// views installed and executed through the morsel executor; the measured
// per-operator profile is printed next to the optimiser's cost estimates.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dqo/internal/av"
	"dqo/internal/core"
	"dqo/internal/datagen"
	"dqo/internal/expr"
	"dqo/internal/logical"
	"dqo/internal/storage"
)

func main() {
	var (
		budget = flag.Int64("budget", 4<<20, "AV space budget in bytes")
		rrows  = flag.Int("rrows", 20000, "|R|")
		srows  = flag.Int("srows", 90000, "|S|")
		groups = flag.Int("groups", 2000, "distinct R.A values")
		dense  = flag.Bool("dense", true, "dense key domains")
		sorted = flag.Bool("sorted", false, "tables stored sorted")
		seed   = flag.Uint64("seed", 42, "dataset seed")
		run    = flag.Bool("run", false, "execute the hottest query with the selected AVs and print its profile")
	)
	flag.Parse()

	cfg := datagen.FKConfig{
		RRows: *rrows, SRows: *srows, AGroups: *groups,
		RSorted: *sorted, SSorted: *sorted, Dense: *dense,
	}
	r, s := datagen.FKPair(*seed, cfg)
	tables := map[string]*storage.Relation{"R": r, "S": s}

	mkQuery := func(aggs []expr.AggSpec) logical.Node {
		return &logical.GroupBy{
			Input: &logical.Join{
				Left:    &logical.Scan{Table: "R", Rel: r},
				Right:   &logical.Scan{Table: "S", Rel: s},
				LeftKey: "ID", RightKey: "R_ID",
			},
			Key:  "A",
			Aggs: aggs,
		}
	}
	workload := []av.WorkloadQuery{
		{Name: "count-by-A", Plan: mkQuery([]expr.AggSpec{{Func: expr.AggCount}}), Freq: 10},
		{Name: "sum-by-A", Plan: mkQuery([]expr.AggSpec{{Func: expr.AggSum, Col: "M"}}), Freq: 3},
	}

	fmt.Printf("workload: %d queries over R(%d rows) and S(%d rows), dense=%v sorted=%v\n",
		len(workload), cfg.RRows, cfg.SRows, cfg.Dense, *sorted)

	cands, err := av.EnumerateCandidates(tables, workload)
	fatal(err)
	fmt.Printf("\n%d candidate views:\n", len(cands))
	rated, err := av.RateCandidates(cands, workload, core.DQO())
	fatal(err)
	for _, c := range rated {
		fmt.Printf("  %-26s %10d bytes  standalone benefit %12.0f\n",
			c.View.Label(), c.View.SizeBytes, c.Benefit)
	}

	greedy, err := av.SelectGreedy(cands, workload, core.DQO(), *budget)
	fatal(err)
	fmt.Printf("\ngreedy %s\n", greedy)
	if len(cands) <= 12 {
		exact, err := av.SelectExhaustive(cands, workload, core.DQO(), *budget)
		fatal(err)
		fmt.Printf("\nexhaustive %s\n", exact)
		if exact.CostWith < greedy.CostWith {
			fmt.Println("\nnote: greedy selection is suboptimal on this workload")
		}
	}
	fmt.Printf("\nworkload plan cost: %.0f -> %.0f (%.2fx) within %d bytes\n",
		greedy.CostWithout, greedy.CostWith, greedy.Improvement(), greedy.TotalBytes)

	if *run {
		cat := av.NewCatalog()
		for _, v := range greedy.Views {
			cat.Add(v)
		}
		prov := av.Qualified{Cat: cat, Aliases: map[string]string{"R": "R", "S": "S"}}
		mode := core.DQO().WithAVs(prov, prov).WithCracked(prov)
		res, err := core.Optimize(workload[0].Plan, mode)
		fatal(err)
		rel, prof, err := core.ExecuteContext(context.Background(), res.Best, core.ExecOptions{})
		fatal(err)
		fmt.Printf("\nexecuted %q with the selected views: %d result rows\n", workload[0].Name, rel.NumRows())
		fmt.Print(prof.String())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "avtool:", err)
		os.Exit(1)
	}
}
