// Command dqoserve runs the dqo engine behind an HTTP/JSON serving layer:
// sessions, server-side prepared statements riding the parameterised plan
// cache, per-tenant admission control, and graceful degradation under load.
//
// Endpoints:
//
//	POST /query       {"sql": "...", "mode": "cal", "args": [...]}   one-shot query
//	POST /session     {"tenant": "team-a"}                           open a session
//	DELETE /session/{id}                                             close it
//	POST /prepare     {"session": "...", "sql": "SELECT ... ?"}      prepare once
//	POST /execute     {"session": "...", "stmt": "s1", "args": [7]}  execute many
//	GET  /metrics     engine + serving-layer Prometheus exposition
//	GET  /healthz     200 while serving, 503 while draining
//
// The server starts with the paper's R/S demo schema loaded (same data as
// dqoshell) and the plan cache enabled, so repeated statement shapes plan
// once. SIGINT/SIGTERM triggers a graceful drain: /healthz flips to 503,
// new queries are refused, and in-flight queries finish before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dqo"
	"dqo/internal/datagen"
	"dqo/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		mode         = flag.String("mode", "cal", "default optimisation mode: sqo|dqo|cal|greedy")
		maxActive    = flag.Int("max-active", 0, "concurrently executing queries (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "queued queries beyond the active slots (0 = 4x active)")
		tenantActive = flag.Int("tenant-active", 0, "per-tenant active slots (0 = no tenant gating)")
		tenantQueue  = flag.Int("tenant-queue", 0, "per-tenant queue positions")
		sessionTTL   = flag.Duration("session-ttl", 5*time.Minute, "idle session expiry")
		maxSessions  = flag.Int("max-sessions", 1024, "session table bound")
		memPerQuery  = flag.Int64("mem", 0, "per-query memory budget in bytes (0 = unlimited)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request timeout")
		drainWait    = flag.Duration("drain", 30*time.Second, "max wait for in-flight queries on shutdown")
	)
	flag.Parse()

	defMode, err := serve.ParseMode(*mode, dqo.ModeDQOCalibrated)
	if err != nil {
		log.Fatalf("dqoserve: %v", err)
	}

	db := dqo.Open()
	loadDemo(db)
	db.EnablePlanCache(true)

	srv := serve.New(serve.Config{
		DB:             db,
		DefaultMode:    defMode,
		ModeSet:        true,
		MaxActive:      *maxActive,
		MaxQueue:       *maxQueue,
		TenantActive:   *tenantActive,
		TenantQueue:    *tenantQueue,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		MemPerQuery:    *memPerQuery,
		DefaultTimeout: *timeout,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// SIGINT/SIGTERM drains: stop advertising health, refuse new queries,
	// let in-flight ones finish, then close the listener.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		log.Printf("dqoserve: draining (up to %v for in-flight queries)", *drainWait)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("dqoserve: drain incomplete: %v", err)
		}
		close(done)
	}()

	fmt.Printf("dqoserve listening on %s (mode %s) — demo tables R and S loaded\n", *addr, defMode)
	fmt.Println(`try: curl -s localhost:8080/query -d '{"sql":"SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A LIMIT 5"}'`)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dqoserve: %v", err)
	}
	<-done
	log.Println("dqoserve: drained, bye")
}

// loadDemo registers the paper's R/S foreign-key pair — the same demo data
// dqoshell starts with, so the curl walkthrough in the README works against
// either front-end.
func loadDemo(db *dqo.DB) {
	cfg := datagen.FKConfig{
		RRows: 20000, SRows: 90000, AGroups: 2000,
		RSorted: true, SSorted: true, Dense: true,
	}
	r, s := datagen.FKPair(42, cfg)
	rt := dqo.NewTableBuilder("R").
		Uint32("ID", r.MustColumn("ID").Uint32s()).
		Uint32("A", r.MustColumn("A").Uint32s()).
		MustBuild()
	rt.DeclareCorrelation("ID", "A")
	st := dqo.NewTableBuilder("S").
		Uint32("R_ID", s.MustColumn("R_ID").Uint32s()).
		Int64("M", s.MustColumn("M").Int64s()).
		MustBuild()
	if err := db.Register(rt); err != nil {
		panic(err)
	}
	if err := db.Register(st); err != nil {
		panic(err)
	}
}
