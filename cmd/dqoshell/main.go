// Command dqoshell is an interactive SQL shell over the dqo engine. It
// starts with the paper's R/S demo schema loaded and shows, side by side,
// what the shallow (SQO) and deep (DQO) optimisers do with each query.
//
// Meta commands:
//
//	\tables                 list registered tables
//	\mode sqo|dqo|cal|greedy set the execution mode (default dqo)
//	\explain <sql>          show the plan for the current mode
//	\deep <sql>             show the plan plus its granule trees (Figure 3)
//	\unnest <sql>           show the step-by-step unnesting chain (Figure 3)
//	\analyze <sql>          execute and show estimated vs measured per operator
//	\compare <sql>          optimise under SQO and DQO, show both plans
//	\av sorted  <tbl> <col> materialise a sorted-projection AV
//	\av hashidx <tbl> <col> materialise a hash-index AV
//	\av sph     <tbl> <col> materialise an SPH-directory AV
//	\av crack   <tbl> <col> materialise an adaptive (cracked) index AV
//	\avs                    list materialised AVs
//	\storage [tbl]          show per-column encoding, segments, ratio, zones
//	\compress <tbl>         re-encode a table into compressed column segments
//	\decompress <tbl>       restore a table to plain column storage
//	\stats                  toggle the per-operator execution profile
//	\feedback [on|off|reset] toggle feedback harvesting, or dump the store
//	\reopt <factor|on|off>  arm mid-query re-planning (on = 10x threshold)
//	\mem <bytes|off>        set a per-query memory budget (e.g. \mem 4194304)
//	\spill <dir|tmp|off>    let queries spill past the budget into dir (tmp = OS temp)
//	\beam <k|off>           cap DP enumeration at k plans per site (beam tier)
//	\timeout <dur|off>      set a per-query deadline (e.g. \timeout 2s)
//	\trace                  show the span tree of the last traced query
//	\metrics                dump DB metrics (Prometheus text exposition)
//	\connect <addr>         run queries against a dqoserve server (e.g. \connect localhost:8080)
//	\disconnect             return to the in-process engine
//	\demo sorted|unsorted [sparse]   regenerate demo tables
//	\quit
//
// Ctrl-C during a query cancels that query (through the morsel executor's
// context plumbing) and returns to the prompt; a second Ctrl-C while the
// query is still unwinding exits the shell cleanly.
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"dqo"
	"dqo/internal/datagen"
	"dqo/internal/serve"
)

func main() {
	db := dqo.Open()
	loadDemo(db, true, true)
	mode := dqo.ModeDQO
	showStats := false
	beam := 0
	reopt := 0.0
	spillDir := ""
	opts := stickyOpts{}
	var remote *serve.Client // non-nil after \connect: queries go over HTTP

	fmt.Println("dqo shell — demo tables R (20000 rows) and S (90000 rows) loaded.")
	fmt.Println(`Try: SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A LIMIT 5`)
	fmt.Println(`or:  \compare SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("%s> ", mode)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, `\`) {
			if remote != nil {
				runRemoteQuery(remote, mode, line)
			} else {
				runQuery(db, mode, line, showStats, opts, beam, reopt, spillDir)
			}
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case `\quit`, `\q`:
			return
		case `\tables`:
			for _, t := range db.Tables() {
				tab, _ := db.Table(t)
				fmt.Printf("%s (%d rows): %s\n", t, tab.NumRows(), strings.Join(tab.Columns(), ", "))
			}
		case `\mode`:
			if len(fields) != 2 {
				fmt.Println("usage: \\mode sqo|dqo|cal|greedy")
				continue
			}
			switch fields[1] {
			case "sqo":
				mode = dqo.ModeSQO
			case "dqo":
				mode = dqo.ModeDQO
			case "cal":
				mode = dqo.ModeDQOCalibrated
			case "greedy":
				mode = dqo.ModeGreedy
			default:
				fmt.Println("unknown mode; want sqo, dqo, cal, or greedy")
			}
		case `\explain`:
			text, err := db.Explain(mode, strings.TrimSpace(strings.TrimPrefix(line, `\explain`)))
			report(text, err)
		case `\deep`:
			text, err := db.Explain(mode, strings.TrimSpace(strings.TrimPrefix(line, `\deep`)), dqo.ExplainGranules())
			report(text, err)
		case `\unnest`:
			text, err := db.Explain(mode, strings.TrimSpace(strings.TrimPrefix(line, `\unnest`)), dqo.ExplainUnnesting())
			report(text, err)
		case `\analyze`:
			q := strings.TrimSpace(strings.TrimPrefix(line, `\analyze`))
			text, err := db.Explain(mode, q, dqo.ExplainAnalyze(), dqo.ExplainWith(queryOpts(opts, beam, reopt, spillDir)...))
			report(text, err)
		case `\compare`:
			q := strings.TrimSpace(strings.TrimPrefix(line, `\compare`))
			sqo, err := db.Explain(dqo.ModeSQO, q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			dqoPlan, err := db.Explain(dqo.ModeDQO, q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("--- SQO ---")
			fmt.Println(sqo)
			fmt.Println("--- DQO ---")
			fmt.Println(dqoPlan)
		case `\av`:
			if len(fields) != 4 {
				fmt.Println("usage: \\av sorted|hashidx|sph <table> <column>")
				continue
			}
			var kind dqo.AVKind
			switch fields[1] {
			case "sorted":
				kind = dqo.AVSorted
			case "hashidx":
				kind = dqo.AVHashIndex
			case "sph":
				kind = dqo.AVSPH
			case "crack":
				kind = dqo.AVCracked
			default:
				fmt.Println("unknown AV kind; want sorted, hashidx, sph, or crack")
				continue
			}
			err := db.MaterializeAV(kind, fields[2], fields[3])
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("materialised.")
			}
		case `\avs`:
			fmt.Println(db.DescribeAVs())
		case `\storage`:
			name := ""
			if len(fields) > 1 {
				name = fields[1]
			}
			text, err := db.DescribeStorage(name)
			report(text, err)
		case `\compress`:
			if len(fields) != 2 {
				fmt.Println("usage: \\compress <table>")
				continue
			}
			if err := db.CompressTable(fields[1]); err != nil {
				fmt.Println("error:", err)
				continue
			}
			text, err := db.DescribeStorage(fields[1])
			report(text, err)
		case `\decompress`:
			if len(fields) != 2 {
				fmt.Println("usage: \\decompress <table>")
				continue
			}
			if err := db.DecompressTable(fields[1]); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("restored to plain storage.")
		case `\trace`:
			if t := db.LastTrace(); t != nil {
				fmt.Print(t.String())
			} else {
				fmt.Println("no traced queries yet.")
			}
		case `\metrics`:
			if remote != nil {
				text, err := remote.Metrics(context.Background())
				report(text, err)
				continue
			}
			if err := db.WriteMetrics(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case `\connect`:
			if len(fields) != 2 {
				fmt.Println("usage: \\connect <addr>  (e.g. \\connect localhost:8080)")
				continue
			}
			base := fields[1]
			if !strings.Contains(base, "://") {
				base = "http://" + base
			}
			c := serve.NewClient(base, nil)
			if !c.Healthy(context.Background()) {
				fmt.Printf("no healthy dqoserve at %s\n", base)
				continue
			}
			remote = c
			fmt.Printf("connected to %s; queries now run server-side (\\disconnect to return).\n", base)
		case `\disconnect`:
			if remote == nil {
				fmt.Println("not connected.")
				continue
			}
			remote = nil
			fmt.Println("back to the in-process engine.")
		case `\mem`:
			if len(fields) != 2 {
				fmt.Println("usage: \\mem <bytes|off>")
				continue
			}
			if fields[1] == "off" {
				opts.MemoryLimit = 0
				fmt.Println("memory budget off.")
				continue
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || n <= 0 {
				fmt.Println("want a positive byte count or off")
				continue
			}
			opts.MemoryLimit = n
			fmt.Printf("memory budget %d bytes per query.\n", n)
		case `\spill`:
			if len(fields) == 1 {
				if spillDir == "" {
					fmt.Println("spilling off; use \\spill <dir|tmp> to enable.")
				} else {
					fmt.Printf("spilling into %s.\n", spillDir)
				}
				continue
			}
			switch fields[1] {
			case "off":
				spillDir = ""
				fmt.Println("spilling off; past-budget queries abort again.")
			case "tmp":
				spillDir = os.TempDir()
				fmt.Printf("spilling into %s; past-budget queries degrade to disk.\n", spillDir)
			default:
				if st, err := os.Stat(fields[1]); err != nil || !st.IsDir() {
					fmt.Printf("not a directory: %s\n", fields[1])
					continue
				}
				spillDir = fields[1]
				fmt.Printf("spilling into %s; past-budget queries degrade to disk.\n", spillDir)
			}
		case `\beam`:
			if len(fields) != 2 {
				fmt.Println("usage: \\beam <k|off>")
				continue
			}
			if fields[1] == "off" {
				beam = 0
				fmt.Println("beam off; enumeration exact.")
				continue
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil || k <= 0 {
				fmt.Println("want a positive beam width or off")
				continue
			}
			beam = k
			fmt.Printf("beam width %d per DP site.\n", k)
		case `\timeout`:
			if len(fields) != 2 {
				fmt.Println("usage: \\timeout <duration|off>")
				continue
			}
			if fields[1] == "off" {
				opts.Timeout = 0
				fmt.Println("timeout off.")
				continue
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				fmt.Println("want a positive duration (e.g. 500ms, 2s) or off")
				continue
			}
			opts.Timeout = d
			fmt.Printf("timeout %v per query.\n", d)
		case `\feedback`:
			if len(fields) == 1 {
				fmt.Println(db.DescribeFeedback())
				continue
			}
			switch fields[1] {
			case "on":
				db.EnableFeedback(true)
				fmt.Println("feedback harvesting on; executed queries now tune estimates and costs.")
			case "off":
				db.EnableFeedback(false)
				fmt.Println("feedback harvesting off; the store is kept but unused.")
			case "reset":
				db.ResetFeedback()
				fmt.Println("feedback store cleared.")
			default:
				fmt.Println("usage: \\feedback [on|off|reset]")
			}
		case `\reopt`:
			if len(fields) != 2 {
				fmt.Println("usage: \\reopt <factor|on|off>")
				continue
			}
			switch fields[1] {
			case "off":
				reopt = 0
				fmt.Println("mid-query re-planning off.")
			case "on":
				reopt = 1 // <=1 means the engine default threshold
				fmt.Println("mid-query re-planning on (default 10x threshold).")
			default:
				f, err := strconv.ParseFloat(fields[1], 64)
				if err != nil || f <= 1 {
					fmt.Println("want a misestimate factor > 1, on, or off")
					continue
				}
				reopt = f
				fmt.Printf("mid-query re-planning on at %gx misestimate.\n", f)
			}
		case `\stats`:
			showStats = !showStats
			if showStats {
				fmt.Println("per-operator stats on.")
			} else {
				fmt.Println("per-operator stats off.")
			}
		case `\demo`:
			sorted := len(fields) > 1 && fields[1] == "sorted"
			dense := !(len(fields) > 2 && fields[2] == "sparse")
			loadDemo(db, sorted, dense)
			fmt.Printf("demo tables regenerated (sorted=%v dense=%v); AVs dropped.\n", sorted, dense)
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
}

func report(text string, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(text)
}

// stickyOpts are the shell's sticky per-query settings, converted into
// functional options by queryOpts on each run.
type stickyOpts struct {
	MemoryLimit int64
	Timeout     time.Duration
}

func runQuery(db *dqo.DB, mode dqo.Mode, query string, showStats bool, opts stickyOpts, beam int, reopt float64, spillDir string) {
	// First Ctrl-C while the query runs cancels its context; the executor
	// unwinds at the next morsel boundary and we return to the prompt. A
	// second Ctrl-C (query stuck or user impatient) exits the shell cleanly.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	done := make(chan struct{})
	go func() {
		select {
		case <-sig:
			cancel()
		case <-done:
			return
		}
		select {
		case <-sig:
			fmt.Println("\ninterrupted twice — exiting.")
			os.Exit(0)
		case <-done:
		}
	}()
	res, err := db.Query(ctx, mode, query, queryOpts(opts, beam, reopt, spillDir)...)
	close(done)
	signal.Stop(sig)
	if err != nil {
		// cancel() above fires after the query returns too, so inspect the
		// error itself: only a query the executor aborted reports it.
		printQueryError(err)
		if showStats && res != nil {
			fmt.Print(res.StatsString())
		}
		return
	}
	if res.NumRows() > 20 {
		fmt.Printf("(showing plan cost %.0f, first 20 of %d rows)\n", res.EstimatedCost(), res.NumRows())
	}
	fmt.Print(clip(res.String(), 20))
	if evs := res.Replans(); len(evs) > 0 {
		fmt.Println("replanned mid-query:")
		for _, ev := range evs {
			fmt.Printf("  %s\n", ev.String())
		}
	}
	if n := res.SpilledBytes(); n > 0 {
		fmt.Printf("spilled %s to disk (run files removed).\n", fmtBytes(n))
	}
	if showStats {
		fmt.Print(res.StatsString())
	}
}

// runRemoteQuery sends one query to the connected dqoserve server and
// renders the JSON result as a table, clipped like the local path.
func runRemoteQuery(c *serve.Client, mode dqo.Mode, query string) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			cancel()
		case <-ctx.Done():
		}
	}()
	resp, err := c.Query(ctx, mode.String(), query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var b strings.Builder
	widths := make([]int, len(resp.Columns))
	for j, n := range resp.Columns {
		widths[j] = len(n)
	}
	rows := make([][]string, len(resp.Rows))
	for i, row := range resp.Rows {
		rows[i] = make([]string, len(row))
		for j, v := range row {
			rows[i][j] = fmt.Sprint(v)
			if j < len(widths) && len(rows[i][j]) > widths[j] {
				widths[j] = len(rows[i][j])
			}
		}
	}
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			if j == len(vals)-1 {
				b.WriteString(v)
				continue
			}
			fmt.Fprintf(&b, "%-*s", widths[j], v)
		}
		b.WriteByte('\n')
	}
	writeRow(resp.Columns)
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows, %.1fms server-side)\n", resp.RowCount, resp.ElapsedMillis)
	fmt.Print(clip(b.String(), 20))
}

// fmtBytes renders a byte count in the nearest binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// queryOpts converts the shell's sticky settings into per-query options.
func queryOpts(opts stickyOpts, beam int, reopt float64, spillDir string) []dqo.QueryOption {
	var out []dqo.QueryOption
	if opts.MemoryLimit > 0 {
		out = append(out, dqo.WithMemoryLimit(opts.MemoryLimit))
	}
	if spillDir != "" {
		out = append(out, dqo.WithSpillDir(spillDir))
	}
	if opts.Timeout > 0 {
		out = append(out, dqo.WithTimeout(opts.Timeout))
	}
	if beam > 0 {
		out = append(out, dqo.WithBeam(beam))
	}
	if reopt > 0 {
		out = append(out, dqo.WithReoptimize(reopt))
	}
	return out
}

// printQueryError reports a failed query with a distinct message per kind
// from the typed error taxonomy, so a cancelled query, an expired deadline,
// a blown memory budget, a full admission queue, and an engine bug all read
// differently at the prompt.
func printQueryError(err error) {
	switch {
	case errors.Is(err, dqo.ErrCancelled):
		fmt.Println("query cancelled")
	case errors.Is(err, dqo.ErrTimeout):
		fmt.Println("query timed out:", err)
	case errors.Is(err, dqo.ErrMemoryBudgetExceeded):
		fmt.Println("memory budget exceeded (try \\spill tmp to degrade to disk):", err)
	case errors.Is(err, dqo.ErrSpillLimitExceeded):
		fmt.Println("spill disk cap exceeded:", err)
	case errors.Is(err, dqo.ErrSpillIO):
		fmt.Println("spill I/O failed (disk full or corrupt run file):", err)
	case errors.Is(err, dqo.ErrQueueFull):
		fmt.Println("rejected by admission control:", err)
	case errors.Is(err, dqo.ErrInternal):
		fmt.Println("internal engine error:", err)
	default:
		fmt.Println("error:", err)
	}
}

// clip keeps at most n data lines of a rendered table.
func clip(table string, n int) string {
	lines := strings.Split(table, "\n")
	if len(lines) <= n+2 {
		return table
	}
	head := lines[:n+1]
	return strings.Join(head, "\n") + "\n...\n" + lines[len(lines)-2] + "\n"
}

func loadDemo(db *dqo.DB, sorted, dense bool) {
	cfg := datagen.FKConfig{
		RRows: 20000, SRows: 90000, AGroups: 2000,
		RSorted: sorted, SSorted: sorted, Dense: dense,
	}
	r, s := datagen.FKPair(42, cfg)
	rt := dqo.NewTableBuilder("R").
		Uint32("ID", r.MustColumn("ID").Uint32s()).
		Uint32("A", r.MustColumn("A").Uint32s()).
		MustBuild()
	rt.DeclareCorrelation("ID", "A")
	st := dqo.NewTableBuilder("S").
		Uint32("R_ID", s.MustColumn("R_ID").Uint32s()).
		Int64("M", s.MustColumn("M").Int64s()).
		MustBuild()
	db.DropAVs()
	if err := db.Register(rt); err != nil {
		panic(err)
	}
	if err := db.Register(st); err != nil {
		panic(err)
	}
}
