// Command dqobench regenerates the paper's tables and figures plus this
// repository's ablations from the command line.
//
// Usage:
//
//	dqobench -experiment figure4 [-n 100000000] [-quadrant unsorted-dense] [-zoom] [-repeats 3]
//	dqobench -experiment figure5 [-execute]
//	dqobench -experiment ablations [-n 10000000]
//	dqobench -experiment scaling [-n 100000000] [-workers 8]
//	dqobench -experiment budget [-n 100000000]
//	dqobench -experiment spill [-n 100000000]
//	dqobench -experiment observe [-metrics metrics.prom]
//	dqobench -experiment plantier [-repeats 25]
//	dqobench -experiment feedback [-n 2000000]
//	dqobench -experiment compress [-n 4000000] [-repeats 3]
//	dqobench -experiment serve [-conns 1000] [-duration 10s]
//	dqobench -experiment all
//
// figure4 reproduces Section 4.2 (grouping performance, four datasets);
// figure5 reproduces Section 4.3 (DQO vs SQO improvement factors; with
// -execute the winning plans are also run and timed); ablations runs the
// A1-A5 design-choice sweeps of DESIGN.md; scaling sweeps the
// morsel-parallel kernels (group-by, join, sort, filter pipe) from 1 to
// -workers workers and prints per-query speedup over serial; budget sweeps
// a per-query memory limit over a high-cardinality grouping query and shows
// the optimiser trading hash aggregation for sort-based plans as the budget
// tightens; spill descends the same way on a selective hash join but with
// spill-to-disk armed, showing the in-memory -> grace-hash-join -> abort
// ladder (at the starvation budget the query completes byte-identically by
// spilling, aborts when spilling is off, and fails with the typed
// spill-limit error under a tiny disk cap), always writing the
// BENCH_spill.json artifact; observe runs a mixed success/failure workload through the public
// query API and dumps the observability surfaces (EXPLAIN ANALYZE, the last
// span tree, and the Prometheus metrics exposition); plantier sweeps the
// planning tiers (greedy, beam-capped Deep, full Deep) over a two-join
// corpus and reports the planning-time vs execution-time Pareto frontier,
// always writing the BENCH_plantier.json artifact; feedback runs a skewed
// corpus cold (mid-query re-planning armed) and again after a harvesting
// pass has warmed the feedback store, reporting plan-switch counts and
// executed-time deltas, always writing the BENCH_feedback.json artifact;
// compress sweeps the direct-on-compressed kernels (zone-map skipping,
// run-aware RLE selection/aggregation, delta-space packed comparison)
// against their decoded twins over cardinality × skew × clustering, always
// writing the BENCH_compress.json artifact; serve starts the dqoserve HTTP
// serving layer on a loopback listener and drives it with -conns concurrent
// clients in three classes (parameterised one-shot queries, prepare-once/
// execute-many, and a noisy analytics tenant that deliberately overruns its
// admission quota), reporting per-class p50/p99/QPS and the plan-cache hit
// rate, always writing the BENCH_serve.json artifact.
//
// -json additionally writes a BENCH_<experiment>.json artifact with the
// machine-readable rows of each experiment that ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dqo/internal/benchkit"
	"dqo/internal/cost"
	"dqo/internal/feedback"
	"dqo/internal/hashtable"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure4 | figure5 | ablations | scaling | budget | spill | observe | plantier | feedback | compress | serve | all")
		n          = flag.Int("n", 100_000_000, "figure4/ablation dataset size (paper: 100M)")
		quadrant   = flag.String("quadrant", "", "restrict figure4 to one quadrant (e.g. unsorted-dense)")
		zoom       = flag.Bool("zoom", false, "add the unsorted-sparse small-group zoom (paper's inset)")
		repeats    = flag.Int("repeats", 1, "timing repeats per figure4 point (min is reported)")
		execute    = flag.Bool("execute", false, "figure5: also execute and time the winning plans")
		morsel     = flag.Int("morsel", 0, "figure5 -execute: executor morsel size in rows (0 = default)")
		seed       = flag.Uint64("seed", 42, "dataset seed")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "scaling: maximum worker count for the parallel sweep")
		calibrate  = flag.Bool("calibrate", false, "fit the calibrated cost model to this machine and print its coefficients")
		csvPath    = flag.String("csv", "", "figure4: also write the measured series to this CSV file")
		metrics    = flag.String("metrics", "", "observe: write the Prometheus exposition to this file (default stdout)")
		jsonOut    = flag.Bool("json", false, "also write BENCH_<experiment>.json with the machine-readable rows")
		conns      = flag.Int("conns", 0, "serve: peak concurrent connections (0 = the default 1000)")
		duration   = flag.Duration("duration", 0, "serve: measured wall time per concurrency level (0 = the default 10s)")
	)
	flag.Parse()

	if *calibrate {
		m := cost.Measure(1 << 21)
		fmt.Println("# calibrated cost model coefficients fitted to this machine (ns/row):")
		for _, s := range hashtable.Schemes() {
			fmt.Printf("scheme   %-14s %6.2f\n", s, m.SchemeNS[s])
		}
		for _, f := range hashtable.Funcs() {
			fmt.Printf("hashfunc %-14s %6.2f\n", f, m.HashNS[f])
		}
		fmt.Printf("radix %.2f  cmp(log) %.2f  std(log) %.2f  sph %.2f  og %.2f  bs(log) %.2f  cache(log) %.2f\n",
			m.RadixRowNS, m.CmpRowNS, m.StdRowNS, m.SPHRowNS, m.OGRowNS, m.BSRowLogNS, m.CacheNS)
		// The same fit in the runtime feedback format: granule family →
		// ns per paper-model cost unit, directly importable with
		// DB.SeedFeedback so offline calibration and runtime feedback
		// write one representation.
		fmt.Println("# feedback coefficients (granule family -> ns per paper-model cost unit; DB.SeedFeedback format):")
		fmt.Print(feedback.MeasuredCoefficients(m, cost.Paper{}).String())
		return
	}

	out := os.Stdout
	run := func(name string, fn func() error) {
		fmt.Fprintf(out, "\n==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "dqobench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	switch *experiment {
	case "figure4":
		run("figure4", func() error { return runFigure4(*n, *quadrant, *zoom, *repeats, *seed, *csvPath, *jsonOut) })
	case "figure5":
		run("figure5", func() error { return runFigure5(*execute, *morsel, *seed, *jsonOut) })
	case "ablations":
		run("ablations", func() error { return runAblations(*n, *seed, *jsonOut) })
	case "scaling":
		run("scaling", func() error { return runScaling(*n, *workers, *seed, *jsonOut) })
	case "budget":
		run("budget", func() error { return runBudget(*n, *seed, *jsonOut) })
	case "spill":
		run("spill", func() error { return runSpill(*n, *seed) })
	case "observe":
		run("observe", func() error { return runObserve(*metrics, *seed) })
	case "plantier":
		run("plantier", func() error { return runPlanTier(*repeats, *seed) })
	case "feedback":
		run("feedback", func() error { return runFeedback(*n, *seed) })
	case "compress":
		run("compress", func() error { return runCompress(*n, *repeats, *seed) })
	case "serve":
		run("serve", func() error { return runServe(*conns, *duration, *seed) })
	case "all":
		run("figure5", func() error { return runFigure5(*execute, *morsel, *seed, *jsonOut) })
		run("figure4", func() error { return runFigure4(*n, *quadrant, *zoom, *repeats, *seed, *csvPath, *jsonOut) })
		run("ablations", func() error { return runAblations(*n, *seed, *jsonOut) })
		run("scaling", func() error { return runScaling(*n, *workers, *seed, *jsonOut) })
		run("budget", func() error { return runBudget(*n, *seed, *jsonOut) })
		run("spill", func() error { return runSpill(*n, *seed) })
		run("observe", func() error { return runObserve(*metrics, *seed) })
		run("plantier", func() error { return runPlanTier(*repeats, *seed) })
		run("feedback", func() error { return runFeedback(*n, *seed) })
		run("compress", func() error { return runCompress(*n, *repeats, *seed) })
		run("serve", func() error { return runServe(*conns, *duration, *seed) })
	default:
		fmt.Fprintf(os.Stderr, "dqobench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// writeArtifact writes one BENCH_<name>.json machine-readable artifact.
func writeArtifact(name string, cfg, rows any, checks []string) error {
	path := "BENCH_" + name + ".json"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	doc := benchkit.BenchDoc{Experiment: name, Config: cfg, Rows: rows, Checks: checks}
	if err := benchkit.WriteBenchJSON(f, doc); err != nil {
		return err
	}
	fmt.Printf("# artifact written to %s\n", path)
	return nil
}

func runFigure4(n int, quadrant string, zoom bool, repeats int, seed uint64, csvPath string, jsonOut bool) error {
	cfg := benchkit.DefaultFigure4(n)
	cfg.Quadrant = quadrant
	cfg.Zoom = zoom
	cfg.Repeats = repeats
	cfg.Seed = seed
	rows, err := benchkit.RunFigure4(cfg, os.Stdout)
	if err != nil {
		return err
	}
	checks := benchkit.CheckFigure4Shape(rows)
	fmt.Println("\n# shape checks against the paper's qualitative claims:")
	for _, line := range checks {
		fmt.Println(line)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := benchkit.WriteCSV(rows, f); err != nil {
			return err
		}
		fmt.Printf("# series written to %s\n", csvPath)
	}
	if jsonOut {
		return writeArtifact("figure4", cfg, rows, checks)
	}
	return nil
}

func runFigure5(execute bool, morsel int, seed uint64, jsonOut bool) error {
	cfg := benchkit.DefaultFigure5()
	cfg.Execute = execute
	cfg.MorselSize = morsel
	cfg.Seed = seed
	cells, err := benchkit.RunFigure5(cfg, os.Stdout)
	if err != nil {
		return err
	}
	if jsonOut {
		return writeArtifact("figure5", cfg, cells, nil)
	}
	return nil
}

func runAblations(n int, seed uint64, jsonOut bool) error {
	// Ablations run at a tenth of the figure4 scale by default: they sweep
	// many variants.
	an := n / 10
	if an < 100000 {
		an = 100000
	}
	ht, err := benchkit.RunAblationHashTable(an, 10000, seed, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Println()
	srt, err := benchkit.RunAblationSort(an, 10000, seed, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Println()
	par, err := benchkit.RunAblationParallel(an, 10000, runtime.GOMAXPROCS(0), seed, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Println()
	eng, err := benchkit.RunAblationEngine(an, 10000, seed, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Println()
	avr, err := benchkit.RunAblationAV(benchkit.DefaultFigure5(), os.Stdout)
	if err != nil {
		return err
	}
	if jsonOut {
		rows := map[string]any{
			"hashtable": ht, "sort": srt, "parallel": par, "engine": eng, "av": avr,
		}
		return writeArtifact("ablations", map[string]any{"n": an, "seed": seed}, rows, nil)
	}
	return nil
}

func runScaling(n, workers int, seed uint64, jsonOut bool) error {
	// The scaling sweep runs at a tenth of the figure4 scale: four kernels
	// times the full worker sweep at each point.
	sn := n / 10
	if sn < 100000 {
		sn = 100000
	}
	rows, err := benchkit.RunScaling(sn, 10000, workers, seed, os.Stdout)
	if err != nil {
		return err
	}
	if jsonOut {
		return writeArtifact("scaling", map[string]any{"n": sn, "workers": workers, "seed": seed}, rows, nil)
	}
	return nil
}

func runBudget(n int, seed uint64, jsonOut bool) error {
	// The budget sweep runs at a thousandth of the figure4 scale: several
	// optimise+execute rounds over a half-distinct grouping relation, some
	// of which land on deliberately slow low-memory plans.
	bn := n / 1000
	if bn < 100000 {
		bn = 100000
	}
	rows, err := benchkit.RunBudget(bn, bn/2, seed, os.Stdout)
	if err != nil {
		return err
	}
	if jsonOut {
		return writeArtifact("budget", map[string]any{"n": bn, "groups": bn / 2, "seed": seed}, rows, nil)
	}
	return nil
}

func runSpill(n int, seed uint64) error {
	// The spill ladder runs at a thousandth of the figure4 scale: each rung
	// re-optimises and re-executes a selective join, and the starved rungs
	// run a serial grace hash join on purpose. All-distinct sparse keys keep
	// the two sides nearly disjoint, so the hash table dwarfs the output.
	sn := n / 1000
	if sn < 200000 {
		sn = 200000
	}
	rows, checks, err := benchkit.RunSpill(sn, sn, seed, os.Stdout)
	if err != nil {
		return err
	}
	// The ladder artifact is the experiment's deliverable; write it always.
	return writeArtifact("spill", map[string]any{"n": sn, "seed": seed}, rows, checks)
}

func runFeedback(n int, seed uint64) error {
	cfg := benchkit.DefaultFeedback()
	cfg.Seed = seed
	// -n is the figure4 scale (100M default); the feedback corpus runs each
	// query seven times (cold, harvest, warm, repeats), so cap its fact side
	// at the default 2M and scale down with small explicit -n values.
	if n > 0 && n < cfg.FactRows {
		cfg.FactRows = n
	}
	report, err := benchkit.RunFeedback(cfg, os.Stdout)
	if err != nil {
		return err
	}
	// The cold-vs-warm artifact is the experiment's deliverable; write it
	// always.
	return writeArtifact("feedback", report.Config, report, report.Checks)
}

func runPlanTier(repeats int, seed uint64) error {
	cfg := benchkit.DefaultPlanTier()
	cfg.Seed = seed
	if repeats > 1 {
		cfg.PlanRepeats = repeats
	}
	report, err := benchkit.RunPlanTier(cfg, os.Stdout)
	if err != nil {
		return err
	}
	// The Pareto artifact is the experiment's deliverable; write it always.
	return writeArtifact("plantier", report.Config, report.Rows, report.Checks)
}

func runServe(conns int, duration time.Duration, seed uint64) error {
	cfg := benchkit.DefaultServe()
	cfg.Seed = seed
	if conns > 0 {
		cfg.Conns = conns
	}
	if duration > 0 {
		cfg.Duration = duration
	}
	report, err := benchkit.RunServe(cfg, os.Stdout)
	if err != nil {
		return err
	}
	// The serving artifact is the experiment's deliverable; write it always.
	return writeArtifact("serve", report.Config, report, report.Checks)
}

func runCompress(n int, repeats int, seed uint64) error {
	// -n is the figure4 scale (100M default); the compress sweep times nine
	// kernels per grid point, so cap it at 4M and scale down with small
	// explicit -n values.
	const compressCap = 4_000_000
	if n <= 0 || n > compressCap {
		n = compressCap
	}
	cfg := benchkit.DefaultCompress(n)
	cfg.Seed = seed
	if repeats > 1 {
		cfg.Repeats = repeats
	}
	rows, err := benchkit.RunCompress(cfg, os.Stdout)
	if err != nil {
		return err
	}
	checks := benchkit.CheckCompressShape(rows)
	fmt.Println("\n# shape checks against the compressed-execution claims:")
	for _, line := range checks {
		fmt.Println(line)
	}
	// The encoded-vs-decoded artifact is the experiment's deliverable;
	// write it always.
	return writeArtifact("compress", cfg, rows, checks)
}
