package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"dqo"
	"dqo/internal/datagen"
)

// runObserve drives a mixed success/failure workload through the public
// query API and dumps the resulting observability surfaces: an EXPLAIN
// ANALYZE report for the paper's join-group-by query, the span tree of the
// last traced query, and the DB-level metrics in Prometheus text
// exposition format (written to metricsPath, or stdout when empty).
func runObserve(metricsPath string, seed uint64) error {
	cfg := datagen.FKConfig{RRows: 20000, SRows: 90000, AGroups: 2000}
	r, s := datagen.FKPair(seed, cfg)
	db := dqo.Open()
	rt := dqo.NewTableBuilder("R").
		Uint32("ID", r.MustColumn("ID").Uint32s()).
		Uint32("A", r.MustColumn("A").Uint32s()).
		MustBuild()
	st := dqo.NewTableBuilder("S").
		Uint32("R_ID", s.MustColumn("R_ID").Uint32s()).
		Int64("M", s.MustColumn("M").Int64s()).
		MustBuild()
	if err := db.Register(rt); err != nil {
		return err
	}
	if err := db.Register(st); err != nil {
		return err
	}

	const joinSQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
	ctx := context.Background()

	// Successes across all three modes.
	for _, mode := range []dqo.Mode{dqo.ModeSQO, dqo.ModeDQO, dqo.ModeDQOCalibrated} {
		if _, err := db.Query(ctx, mode, joinSQL); err != nil {
			return fmt.Errorf("observe workload: %s: %w", mode, err)
		}
	}
	// A memory-budget failure and a parse failure: the metrics must
	// partition these into their qerr kinds, not lose them.
	if _, err := db.Query(ctx, dqo.ModeDQO, joinSQL, dqo.WithMemoryLimit(1024)); err == nil {
		return fmt.Errorf("observe workload: budget-starved query unexpectedly succeeded")
	}
	if _, err := db.Query(ctx, dqo.ModeDQO, "SELECT FROM WHERE"); err == nil {
		return fmt.Errorf("observe workload: malformed query unexpectedly parsed")
	}
	// A pre-cancelled context surfaces as the cancelled kind.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := db.Query(cancelled, dqo.ModeDQO, joinSQL); err == nil {
		return fmt.Errorf("observe workload: cancelled query unexpectedly succeeded")
	}

	text, err := db.Explain(dqo.ModeDQO, joinSQL, dqo.ExplainAnalyze())
	if err != nil {
		return err
	}
	fmt.Println("# EXPLAIN ANALYZE (dqo mode)")
	fmt.Println(text)

	if t := db.LastTrace(); t != nil {
		fmt.Println("# span tree of the last traced query")
		fmt.Print(t.String())
		fmt.Println()
	}

	var w io.Writer = os.Stdout
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Println("# metrics (Prometheus text exposition)")
	if err := db.WriteMetrics(w); err != nil {
		return err
	}
	if metricsPath != "" {
		fmt.Printf("# metrics written to %s\n", metricsPath)
	}
	return nil
}
