// External test package: benchkit imports dqo (the serve experiment drives
// the public API), so the A4 benchmark that drives benchkit must live
// outside package dqo to avoid an import cycle in the test binary.
package dqo_test

import (
	"io"
	"testing"

	"dqo/internal/benchkit"
)

// BenchmarkAblationAV is A4: optimisation with and without Algorithmic
// Views (structure AVs change plan costs; the effect on optimisation time
// itself is measured by the benchkit A4 runner and cmd/dqobench).
func BenchmarkAblationAV(b *testing.B) {
	var out io.Writer = io.Discard
	b.Run("report", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := benchkit.RunAblationAV(benchkit.Figure5Config{RRows: 20000, SRows: 90000, AGroups: 20000, Seed: 42}, out)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.CostImprovement, "cost_improvement")
				b.ReportMetric(res.OptTimeImprovement, "opt_time_improvement")
			}
		}
	})
}
