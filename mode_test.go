package dqo

import "testing"

// declaredModes must list every Mode constant; the round-trip test below
// keeps String and coreMode in sync with the declaration block in db.go.
var declaredModes = []Mode{ModeSQO, ModeDQO, ModeDQOCalibrated, ModeGreedy}

func TestModeRoundTrip(t *testing.T) {
	cases := []struct {
		mode Mode
		name string
	}{
		{ModeSQO, "sqo"},
		{ModeDQO, "dqo"},
		{ModeDQOCalibrated, "dqo-calibrated"},
		{ModeGreedy, "greedy"},
	}
	if len(cases) != len(declaredModes) {
		t.Fatalf("round-trip table covers %d modes, %d declared", len(cases), len(declaredModes))
	}
	seen := map[string]bool{}
	for _, tc := range cases {
		if got := tc.mode.String(); got != tc.name {
			t.Errorf("Mode(%d).String() = %q, want %q", tc.mode, got, tc.name)
		}
		cm, err := tc.mode.coreMode()
		if err != nil {
			t.Errorf("Mode(%d).coreMode(): %v", tc.mode, err)
			continue
		}
		// The core mode must round-trip to the same name the facade reports,
		// so Explain headers, plan-cache keys, and API docs agree.
		if cm.Name != tc.mode.String() {
			t.Errorf("Mode(%d): core name %q != String() %q", tc.mode, cm.Name, tc.mode.String())
		}
		if seen[cm.Name] {
			t.Errorf("duplicate core mode name %q", cm.Name)
		}
		seen[cm.Name] = true
	}
}

func TestModeUnknown(t *testing.T) {
	bad := Mode(99)
	if got := bad.String(); got != "unknown" {
		t.Fatalf("Mode(99).String() = %q", got)
	}
	if _, err := bad.coreMode(); err == nil {
		t.Fatal("Mode(99).coreMode() succeeded")
	}
}
