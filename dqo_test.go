package dqo

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"dqo/internal/datagen"
)

// testDB builds a DB with the paper's R/S schema at reduced scale.
func testDB(t testing.TB, rSorted, sSorted, dense bool) *DB {
	t.Helper()
	cfg := datagen.FKConfig{RRows: 1000, SRows: 4500, AGroups: 100,
		RSorted: rSorted, SSorted: sSorted, Dense: dense}
	r, s := datagen.FKPair(5, cfg)
	db := Open()
	if err := db.Register(&Table{rel: r}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(&Table{rel: s}); err != nil {
		t.Fatal(err)
	}
	return db
}

const paperSQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"

func TestQueryAllModes(t *testing.T) {
	db := testDB(t, false, false, true)
	var ref *Result
	for _, m := range []Mode{ModeSQO, ModeDQO, ModeDQOCalibrated} {
		res, err := db.Query(context.Background(), m, paperSQL+" ORDER BY R.A")
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.NumRows() != 100 {
			t.Fatalf("%s: %d rows", m, res.NumRows())
		}
		if ref == nil {
			ref = res
			continue
		}
		a, _ := ref.Int64Column("count_star")
		b, _ := res.Int64Column("count_star")
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s disagrees at row %d", m, i)
			}
		}
	}
}

func TestQueryModesPickDifferentPlans(t *testing.T) {
	db := testDB(t, false, false, true)
	sqo, err := db.Explain(ModeSQO, paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	dqo, err := db.Explain(ModeDQO, paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqo, "HJ") || !strings.Contains(sqo, "HG") {
		t.Fatalf("SQO plan unexpected:\n%s", sqo)
	}
	if !strings.Contains(dqo, "SPHJ") || !strings.Contains(dqo, "SPHG") {
		t.Fatalf("DQO plan unexpected:\n%s", dqo)
	}
}

func TestExplainDeepShowsGranules(t *testing.T) {
	db := testDB(t, false, false, true)
	out, err := db.Explain(ModeDQO, paperSQL, ExplainGranules())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"granule tree", "partitionBy", "«molecule»"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain(ExplainGranules) missing %q:\n%s", want, out)
		}
	}
}

func TestBuilderAndTableAPI(t *testing.T) {
	tab, err := NewTableBuilder("t").
		Uint32("k", []uint32{2, 1, 2}).
		Int64("v", []int64{10, 20, 30}).
		String("s", []string{"x", "y", "x"}).
		Float64("f", []float64{1, 2, 3}).
		Uint64("u", []uint64{1, 2, 3}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "t" || tab.NumRows() != 3 || len(tab.Columns()) != 5 {
		t.Fatalf("table metadata wrong: %v", tab.Columns())
	}
	if _, err := NewTableBuilder("bad").Uint32("a", []uint32{1}).Int64("b", nil).Build(); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	db := Open()
	if err := db.Register(tab); err != nil {
		t.Fatal(err)
	}
	got, ok := db.Table("t")
	if !ok || got.NumRows() != 3 {
		t.Fatal("table lookup failed")
	}
	if len(db.Tables()) != 1 {
		t.Fatal("table listing wrong")
	}
	res, err := db.Query(context.Background(), ModeDQO, "SELECT k, SUM(v) AS total FROM t GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	keys, err := res.Uint32Column("t.k")
	if err != nil {
		t.Fatal(err)
	}
	totals, err := res.Int64Column("total")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != 1 || totals[0] != 20 || totals[1] != 40 {
		t.Fatalf("result wrong: %v %v", keys, totals)
	}
}

func TestStringGroupingViaSQL(t *testing.T) {
	tab := NewTableBuilder("orders").
		String("city", []string{"ber", "par", "ber", "rom", "par", "ber"}).
		Int64("amount", []int64{10, 20, 30, 40, 50, 60}).
		MustBuild()
	db := Open()
	if err := db.Register(tab); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), ModeDQO, "SELECT city, SUM(amount) AS total FROM orders GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("%d groups", res.NumRows())
	}
	// Dict codes are dense: DQO should choose SPHG for string grouping.
	if !strings.Contains(res.PlanExplain(), "SPHG") {
		t.Fatalf("string grouping did not use SPH:\n%s", res.PlanExplain())
	}
	got := map[string]string{}
	for i := 0; i < res.NumRows(); i++ {
		row := res.Row(i)
		got[row[0]] = row[1]
	}
	if got["ber"] != "100" || got["par"] != "70" || got["rom"] != "40" {
		t.Fatalf("totals wrong: %v", got)
	}
}

func TestWhereAndLimit(t *testing.T) {
	db := testDB(t, true, true, true)
	res, err := db.Query(context.Background(), ModeDQO, "SELECT ID, A FROM R WHERE A < 10 ORDER BY ID LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 7 {
		t.Fatalf("LIMIT ignored: %d rows", res.NumRows())
	}
	ids, err := res.Uint32Column("R.ID")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] > ids[i] {
			t.Fatal("ORDER BY violated")
		}
	}
}

func TestAVsThroughFacade(t *testing.T) {
	db := testDB(t, false, false, true)
	if err := db.MaterializeAV(AVSorted, "R", "ID"); err != nil {
		t.Fatal(err)
	}
	if err := db.MaterializeAV(AVSPH, "R", "ID"); err != nil {
		t.Fatal(err)
	}
	if err := db.MaterializeAV(AVHashIndex, "S", "R_ID"); err != nil {
		t.Fatal(err)
	}
	if err := db.MaterializeAV(AVSPH, "S", "R_ID"); err == nil {
		t.Fatal("SPH AV over non-dense column accepted")
	}
	desc := db.DescribeAVs()
	for _, want := range []string{"av:sorted(R.ID)", "av:sph(R.ID)", "av:hashidx(S.R_ID)"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("DescribeAVs missing %s:\n%s", want, desc)
		}
	}
	// The SPH-directory AV should now appear in DQO plans.
	exp, err := db.Explain(ModeDQO, paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp, "av:sph(R.ID)") {
		t.Fatalf("AV not used:\n%s", exp)
	}
	res, err := db.Query(context.Background(), ModeDQO, paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 100 {
		t.Fatalf("%d rows", res.NumRows())
	}
	db.DropAVs()
	if !strings.Contains(db.DescribeAVs(), "empty") {
		t.Fatal("DropAVs left views behind")
	}
}

func TestSelectAVs(t *testing.T) {
	db := testDB(t, false, false, true)
	report, err := db.SelectAVs(ModeDQO, map[string]float64{paperSQL: 10}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "selection") {
		t.Fatalf("report = %q", report)
	}
	if strings.Contains(db.DescribeAVs(), "empty") {
		t.Fatal("SelectAVs installed nothing for a workload that benefits")
	}
	if _, err := db.SelectAVs(ModeDQO, map[string]float64{"SELECT broken": 1}, 1); err == nil {
		t.Fatal("broken workload query accepted")
	}
}

func TestPlanCacheThroughFacade(t *testing.T) {
	db := testDB(t, true, true, true)
	db.EnablePlanCache(true)
	if _, err := db.Query(context.Background(), ModeDQO, paperSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(context.Background(), ModeDQO, paperSQL); err != nil {
		t.Fatal(err)
	}
	hits, misses := db.PlanCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d/%d", hits, misses)
	}
	// Different mode: separate cache entry.
	if _, err := db.Query(context.Background(), ModeSQO, paperSQL); err != nil {
		t.Fatal(err)
	}
	if _, m := db.PlanCacheStats(); m != 2 {
		t.Fatalf("misses = %d, want 2", m)
	}
	db.EnablePlanCache(false)
}

func TestQueryErrors(t *testing.T) {
	db := testDB(t, true, true, true)
	cases := []string{
		"not sql at all",
		"SELECT nosuch FROM R",
		"SELECT x FROM nosuchtable",
	}
	for _, q := range cases {
		if _, err := db.Query(context.Background(), ModeDQO, q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
	if _, err := db.Query(context.Background(), Mode(99), "SELECT ID FROM R"); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := db.Register(nil); err == nil {
		t.Error("nil table registered")
	}
	if err := db.MaterializeAV(AVSorted, "nosuch", "x"); err == nil {
		t.Error("AV on unknown table accepted")
	}
}

func TestResultString(t *testing.T) {
	db := testDB(t, true, true, true)
	res, err := db.Query(context.Background(), ModeDQO, "SELECT ID FROM R ORDER BY ID LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "R.ID") || !strings.Contains(s, "(2 rows)") {
		t.Fatalf("String rendering wrong:\n%s", s)
	}
	if res.EstimatedCost() < 0 {
		t.Fatal("negative cost")
	}
}

func TestColumnAccessorErrors(t *testing.T) {
	db := testDB(t, true, true, true)
	res, err := db.Query(context.Background(), ModeDQO, "SELECT ID FROM R LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Uint32Column("missing"); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := res.Int64Column("R.ID"); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := res.Float64Column("R.ID"); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestCorrelationDeclarationAPI(t *testing.T) {
	tab := NewTableBuilder("t").
		Uint32("k", []uint32{3, 1, 2}).
		Uint32("d", []uint32{30, 10, 20}).
		MustBuild()
	tab.DeclareCorrelation("k", "d")
	if err := tab.VerifyCorrelation("k", "d"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCSV(t *testing.T) {
	csv := "id,name,score\n1,ada,9.5\n2,bob,7.25\n"
	tab, err := LoadCSV("people", strings.NewReader(csv), []CSVColumn{
		{"id", Uint32Col}, {"name", StringCol}, {"score", Float64Col},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	if err := db.Register(tab); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), ModeDQO, "SELECT name, score FROM people WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Row(0)[0] != "bob" {
		t.Fatalf("CSV query wrong: %s", res)
	}
	if _, err := LoadCSV("bad", strings.NewReader("x\nnotanum\n"), []CSVColumn{{"x", Uint32Col}}); err == nil {
		t.Fatal("bad CSV accepted")
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := testDB(t, false, false, true)
	if err := db.MaterializeAV(AVSPH, "R", "ID"); err != nil {
		t.Fatal(err)
	}
	db.EnablePlanCache(true)
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 10; i++ {
				mode := ModeDQO
				if (w+i)%2 == 0 {
					mode = ModeSQO
				}
				res, err := db.Query(context.Background(), mode, paperSQL)
				if err != nil {
					errc <- err
					return
				}
				if res.NumRows() != 100 {
					errc <- fmt.Errorf("worker %d: %d rows", w, res.NumRows())
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReregisterDropsStaleAVs(t *testing.T) {
	db := testDB(t, false, false, true)
	if err := db.MaterializeAV(AVSPH, "R", "ID"); err != nil {
		t.Fatal(err)
	}
	if err := db.MaterializeAV(AVHashIndex, "S", "R_ID"); err != nil {
		t.Fatal(err)
	}
	// Replace R with fresh (different) data: its AVs are stale and must go;
	// S's AV must survive.
	cfg := datagen.FKConfig{RRows: 500, SRows: 2000, AGroups: 50, Dense: true}
	r2, _ := datagen.FKPair(99, cfg)
	if err := db.Register(&Table{rel: r2}); err != nil {
		t.Fatal(err)
	}
	desc := db.DescribeAVs()
	if strings.Contains(desc, "av:sph(R.ID)") {
		t.Fatalf("stale AV survived re-registration:\n%s", desc)
	}
	if !strings.Contains(desc, "av:hashidx(S.R_ID)") {
		t.Fatalf("unrelated AV dropped:\n%s", desc)
	}
	// And queries against the replaced table still work. (S references old
	// R ids that may not join the new, smaller R — that's fine.)
	if _, err := db.Query(context.Background(), ModeDQO, "SELECT A, COUNT(*) FROM R GROUP BY A"); err != nil {
		t.Fatal(err)
	}
}

func TestExplainUnnest(t *testing.T) {
	db := testDB(t, false, false, true)
	out, err := db.Explain(ModeDQO, paperSQL, ExplainUnnesting())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"unnesting", "step 0 (physicality 0.00)", "step 3", "partitionBy", "⋈", "Γ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain(ExplainUnnesting) missing %q:\n%s", want, out)
		}
	}
}

func TestCrackedAVThroughFacade(t *testing.T) {
	db := testDB(t, false, false, true)
	if err := db.MaterializeAV(AVCracked, "R", "A"); err != nil {
		t.Fatal(err)
	}
	if err := db.MaterializeAV(AVCracked, "nosuch", "A"); err == nil {
		t.Fatal("cracked AV on unknown table accepted")
	}
	const q = "SELECT A, COUNT(*) FROM R WHERE A >= 10 AND A < 30 GROUP BY A ORDER BY A"
	exp, err := db.Explain(ModeDQO, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp, "av:crack(R.A)") {
		t.Fatalf("cracked AV not used:\n%s", exp)
	}
	res, err := db.Query(context.Background(), ModeDQO, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 20 {
		t.Fatalf("%d groups, want 20", res.NumRows())
	}
	keys, _ := res.Uint32Column("R.A")
	counts, _ := res.Int64Column("count_star")
	// Reference without the AV.
	db2 := testDB(t, false, false, true)
	ref, err := db2.Query(context.Background(), ModeDQO, q)
	if err != nil {
		t.Fatal(err)
	}
	rkeys, _ := ref.Uint32Column("R.A")
	rcounts, _ := ref.Int64Column("count_star")
	for i := range rkeys {
		if keys[i] != rkeys[i] || counts[i] != rcounts[i] {
			t.Fatalf("cracked result differs at %d", i)
		}
	}
}
